package diagnose

import (
	"fmt"
	"sort"
	"time"

	"nfp/internal/telemetry"
)

// Health states, from best to worst. The state machine:
//
//	unknown    fewer than two samples retained — no window to judge.
//	ok         no rule below fired.
//	degraded   any NF unhealthy or panicking this window, any ρ ≥
//	           RhoDegraded, or any chain burning error budget (> 1×).
//	overloaded any ρ ≥ RhoOverloaded, packets shed this window, or a
//	           chain burning ≥ 10× its error budget.
//
// Overloaded wins over degraded; every fired rule is listed in Reasons.
const (
	StateUnknown    = "unknown"
	StateOK         = "ok"
	StateDegraded   = "degraded"
	StateOverloaded = "overloaded"
)

// stateValue maps a state to the exported nfp_health_state gauge value.
func stateValue(state string) int {
	switch state {
	case StateOK:
		return 1
	case StateDegraded:
		return 2
	case StateOverloaded:
		return 3
	}
	return 0
}

// NFDiag is one NF's windowed diagnosis. Rho is the queueing-model
// utilization estimate ρ = arrival rate × mean service time: above 1
// the NF cannot drain its offered load and its ring must grow.
type NFDiag struct {
	NF  string `json:"nf"`
	MID string `json:"mid"`
	// Shard identifies the dataplane shard this instance runs on
	// (empty on an unsharded server, where series carry no shard
	// label). Each shard's instance is diagnosed independently: a hot
	// flow overloading one shard shows as that shard's ρ, not an
	// average smeared across the others.
	Shard string `json:"shard,omitempty"`

	ArrivalPPS    float64 `json:"arrival_pps"`
	MeanServiceNS float64 `json:"mean_service_ns"`
	Rho           float64 `json:"rho"`

	RingHighWater int64   `json:"ring_high_water"`
	RingCapacity  int64   `json:"ring_capacity"`
	RingFill      float64 `json:"ring_fill"`
	RingRising    bool    `json:"ring_rising"`

	ShedPPS float64 `json:"shed_pps"`
	DropPPS float64 `json:"drop_pps"`
	Healthy bool    `json:"healthy"`

	Verdict string `json:"verdict"`
}

// ChainSLO is one chain's (match rule's) latency-objective evaluation
// over the window. BurnRate is the error-budget burn: for an SLO of
// "p99 ≤ target", the budget is 1% of samples; burn = violation
// fraction / 1%. Burn 1.0 consumes the budget exactly; above it the
// chain is out of SLO.
type ChainSLO struct {
	MID string `json:"mid"`
	// Shard qualifies the series on a sharded server (empty when
	// unsharded): each shard's e2e histogram is judged against the
	// same per-chain objective.
	Shard       string  `json:"shard,omitempty"`
	TargetP99NS uint64  `json:"target_p99_ns"`
	WindowP99NS uint64  `json:"window_p99_ns"`
	WindowCount uint64  `json:"window_count"`
	Violations  uint64  `json:"violations"`
	BurnRate    float64 `json:"burn_rate"`
	Met         bool    `json:"met"`
}

// ClassifierDiag is the windowed view of the classifier's microflow
// cache. HitRate near 1 means steady-state flows ride the exact-match
// fast path and rule-table size is off the per-packet critical path; a
// persistently low rate with high EvictPPS means the live flow count
// exceeds the cache (raise -flow-cache-size), while a low rate with
// near-zero evictions points at churn — every table mutation
// invalidates all entries, so constant rule updates keep the cache
// cold.
type ClassifierDiag struct {
	CacheHitPPS   float64 `json:"cache_hit_pps"`
	CacheMissPPS  float64 `json:"cache_miss_pps"`
	CacheEvictPPS float64 `json:"cache_evict_pps"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
}

// HealthReport is the /debug/health document: the machine-readable
// verdict the ROADMAP autoscaler consumes.
type HealthReport struct {
	State         string          `json:"state"`
	Reasons       []string        `json:"reasons,omitempty"`
	WindowSeconds float64         `json:"window_seconds"`
	Samples       int             `json:"samples"`
	Bottlenecks   []NFDiag        `json:"bottlenecks"` // ranked by ρ, descending
	SLO           []ChainSLO      `json:"slo,omitempty"`
	Classifier    *ClassifierDiag `json:"classifier,omitempty"` // nil when the flow cache is disabled
}

// Report computes the current diagnosis from the retained window. With
// fewer than two samples the state is unknown and everything else is
// empty.
func (d *Diagnoser) Report() HealthReport {
	oldest, newest, n, ok := d.window()
	if !ok {
		return HealthReport{State: StateUnknown, Samples: n,
			Reasons: []string{"need at least 2 samples"}}
	}
	elapsed := newest.ts.Sub(oldest.ts).Seconds()
	rep := HealthReport{WindowSeconds: elapsed, Samples: n}
	if elapsed <= 0 {
		rep.State = StateUnknown
		rep.Reasons = []string{"window has zero duration"}
		return rep
	}

	rep.Bottlenecks = d.rankNFs(oldest, newest, elapsed)
	rep.SLO = d.evalSLO(oldest, newest)
	rep.Classifier = classifierDiag(oldest, newest, elapsed)
	rep.State, rep.Reasons = d.judge(oldest, newest, rep)
	return rep
}

// classifierDiag derives the microflow-cache view from the window's
// counter deltas. A server with the cache disabled never registers the
// series, so the section is omitted rather than reported as all-zero.
func classifierDiag(oldest, newest sample, elapsed float64) *ClassifierDiag {
	present := false
	for _, c := range newest.snap.Counters {
		if c.Name == metricCacheHits {
			present = true
			break
		}
	}
	if !present {
		return nil
	}
	hits := newest.snap.SumCounters(metricCacheHits) - oldest.snap.SumCounters(metricCacheHits)
	misses := newest.snap.SumCounters(metricCacheMisses) - oldest.snap.SumCounters(metricCacheMisses)
	evicts := newest.snap.SumCounters(metricCacheEvicts) - oldest.snap.SumCounters(metricCacheEvicts)
	cd := &ClassifierDiag{
		CacheHitPPS:   float64(hits) / elapsed,
		CacheMissPPS:  float64(misses) / elapsed,
		CacheEvictPPS: float64(evicts) / elapsed,
	}
	if hits+misses > 0 {
		cd.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	return cd
}

// rankNFs builds the per-NF diagnosis, ranked by ρ descending.
func (d *Diagnoser) rankNFs(oldest, newest sample, elapsed float64) []NFDiag {
	var out []NFDiag
	for _, c := range newest.snap.Counters {
		if c.Name != metricNFPacketsIn {
			continue
		}
		nf, mid := c.Labels["nf"], c.Labels["mid"]
		nd := NFDiag{NF: nf, MID: mid, Shard: c.Labels["shard"], Healthy: true}

		inDelta := c.Value - counterAt(oldest.snap, metricNFPacketsIn, c.Labels)
		nd.ArrivalPPS = float64(inDelta) / elapsed

		k := histKey(metricNFSvcTime, c.Labels)
		svc := newest.hists[k].DeltaFrom(oldest.hists[k])
		if svc.Count > 0 {
			nd.MeanServiceNS = float64(svc.Sum) / float64(svc.Count)
		}
		nd.Rho = nd.ArrivalPPS * nd.MeanServiceNS / 1e9

		nd.RingHighWater = gaugeAt(newest.snap, metricNFRingHW, c.Labels)
		nd.RingCapacity = gaugeAt(newest.snap, metricNFRingCap, c.Labels)
		if nd.RingCapacity > 0 {
			nd.RingFill = float64(nd.RingHighWater) / float64(nd.RingCapacity)
		}
		nd.RingRising = nd.RingHighWater > gaugeAt(oldest.snap, metricNFRingHW, c.Labels)

		shedDelta := counterAt(newest.snap, metricNFRingSheds, c.Labels) -
			counterAt(oldest.snap, metricNFRingSheds, c.Labels)
		nd.ShedPPS = float64(shedDelta) / elapsed
		dropDelta := counterAt(newest.snap, metricNFPanicDrops, c.Labels) -
			counterAt(oldest.snap, metricNFPanicDrops, c.Labels)
		dropDelta += counterAt(newest.snap, metricNFUnhealthy, c.Labels) -
			counterAt(oldest.snap, metricNFUnhealthy, c.Labels)
		nd.DropPPS = float64(dropDelta) / elapsed

		if hasGauge(newest.snap, metricNFHealthy, c.Labels) {
			nd.Healthy = gaugeAt(newest.snap, metricNFHealthy, c.Labels) != 0
		}

		nd.Verdict = verdict(nd)
		out = append(out, nd)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Rho != out[j].Rho {
			return out[i].Rho > out[j].Rho
		}
		if out[i].NF != out[j].NF {
			return out[i].NF < out[j].NF
		}
		if out[i].MID != out[j].MID {
			return out[i].MID < out[j].MID
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

// verdict renders the one-line human summary ("nf=ids ρ=0.94, ring 87%
// full, rising").
func verdict(nd NFDiag) string {
	s := fmt.Sprintf("nf=%s", nd.NF)
	if nd.Shard != "" {
		s += " shard=" + nd.Shard
	}
	s += fmt.Sprintf(" ρ=%.2f", nd.Rho)
	if nd.RingCapacity > 0 {
		s += fmt.Sprintf(", ring %.0f%% full", nd.RingFill*100)
	}
	if nd.RingRising {
		s += ", rising"
	}
	if nd.ShedPPS > 0 {
		s += fmt.Sprintf(", shedding %.0f pps", nd.ShedPPS)
	}
	if !nd.Healthy {
		s += ", UNHEALTHY"
	}
	return s
}

// evalSLO evaluates the configured p99 objective per chain (MID) from
// the e2e latency histograms' window deltas.
func (d *Diagnoser) evalSLO(oldest, newest sample) []ChainSLO {
	if d.cfg.SLOTargetP99 <= 0 {
		return nil
	}
	target := uint64(d.cfg.SLOTargetP99.Nanoseconds())
	var out []ChainSLO
	for _, hs := range newest.snap.Histograms {
		if hs.Name != metricE2ELatency {
			continue
		}
		k := histKey(metricE2ELatency, hs.Labels)
		win := newest.hists[k].DeltaFrom(oldest.hists[k])
		slo := ChainSLO{MID: hs.Labels["mid"], Shard: hs.Labels["shard"], TargetP99NS: target}
		if win.Count > 0 {
			slo.WindowCount = win.Count
			slo.WindowP99NS = win.Percentile(99)
			slo.Violations = win.CountAbove(target)
			slo.BurnRate = (float64(slo.Violations) / float64(win.Count)) / 0.01
		}
		slo.Met = slo.BurnRate <= 1
		out = append(out, slo)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MID != out[j].MID {
			return out[i].MID < out[j].MID
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

// judge runs the health state machine over the assembled report.
func (d *Diagnoser) judge(oldest, newest sample, rep HealthReport) (string, []string) {
	var reasons []string
	state := StateOK
	raise := func(to string, reason string) {
		reasons = append(reasons, reason)
		if to == StateOverloaded || state != StateOverloaded && to == StateDegraded {
			state = to
		}
	}

	for _, nf := range rep.Bottlenecks {
		switch {
		case nf.Rho >= d.cfg.RhoOverloaded:
			raise(StateOverloaded, fmt.Sprintf("nf %s at ρ=%.2f ≥ %.2f", nfIdent(nf), nf.Rho, d.cfg.RhoOverloaded))
		case nf.Rho >= d.cfg.RhoDegraded:
			raise(StateDegraded, fmt.Sprintf("nf %s at ρ=%.2f ≥ %.2f", nfIdent(nf), nf.Rho, d.cfg.RhoDegraded))
		}
		if !nf.Healthy {
			raise(StateDegraded, fmt.Sprintf("nf %s reported unhealthy", nfIdent(nf)))
		}
	}

	sheds := newest.snap.SumCounters(metricRingSheds) + newest.snap.SumCounters(metricNFRingSheds) -
		oldest.snap.SumCounters(metricRingSheds) - oldest.snap.SumCounters(metricNFRingSheds)
	if sheds > 0 {
		raise(StateOverloaded, fmt.Sprintf("%d packets shed this window", sheds))
	}
	if panics := newest.snap.SumCounters(metricNFPanics) - oldest.snap.SumCounters(metricNFPanics); panics > 0 {
		raise(StateDegraded, fmt.Sprintf("%d NF panics this window", panics))
	}

	for _, slo := range rep.SLO {
		ident := "mid=" + slo.MID
		if slo.Shard != "" {
			ident += " shard=" + slo.Shard
		}
		if slo.BurnRate >= 10 {
			raise(StateOverloaded, fmt.Sprintf("chain %s burning %.1f× its error budget", ident, slo.BurnRate))
		} else if !slo.Met {
			raise(StateDegraded, fmt.Sprintf("chain %s burning %.1f× its error budget", ident, slo.BurnRate))
		}
	}
	return state, reasons
}

// nfIdent names an NF instance for reason strings, shard-qualified when
// the server is sharded.
func nfIdent(nd NFDiag) string {
	if nd.Shard != "" {
		return fmt.Sprintf("%s (mid %s, shard %s)", nd.NF, nd.MID, nd.Shard)
	}
	return fmt.Sprintf("%s (mid %s)", nd.NF, nd.MID)
}

// counterAt finds a counter series by name and exact label set.
func counterAt(s telemetry.Snapshot, name string, labels map[string]string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name && labelsEqual(c.Labels, labels) {
			return c.Value
		}
	}
	return 0
}

// gaugeAt finds a gauge series by name and exact label set.
func gaugeAt(s telemetry.Snapshot, name string, labels map[string]string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name && labelsEqual(g.Labels, labels) {
			return g.Value
		}
	}
	return 0
}

// hasGauge reports whether the series exists at all (gaugeAt cannot
// distinguish absent from zero).
func hasGauge(s telemetry.Snapshot, name string, labels map[string]string) bool {
	for _, g := range s.Gauges {
		if g.Name == name && labelsEqual(g.Labels, labels) {
			return true
		}
	}
	return false
}

func labelsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// WindowDuration returns the configured span of the full ring — how
// much history the diagnoser retains once warm.
func (d *Diagnoser) WindowDuration() time.Duration {
	return time.Duration(d.cfg.Window) * d.cfg.Interval
}
