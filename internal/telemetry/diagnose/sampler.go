// Package diagnose turns the raw telemetry substrate (counters,
// gauges, histograms) into live answers: which NF is the bottleneck,
// which flows are driving the load, and is the chain meeting its
// latency objective. It runs entirely off-hot-path — a background
// sampler snapshots the registry on an interval into a fixed ring of
// time-series samples, and every verdict is computed from deltas
// between retained samples, so the dataplane pays nothing beyond the
// atomics it already maintains.
package diagnose

import (
	"sort"
	"strings"
	"sync"
	"time"

	"nfp/internal/telemetry"
	"nfp/internal/telemetry/flightrec"
)

// Metric families the sampler reads. They match the names the
// dataplane server registers.
const (
	metricNFPacketsIn  = "nfp_nf_packets_in_total"
	metricNFSvcTime    = "nfp_nf_service_time_ns"
	metricNFRingHW     = "nfp_nf_ring_high_water"
	metricNFRingCap    = "nfp_nf_ring_capacity"
	metricNFRingSheds  = "nfp_nf_ring_sheds_total"
	metricNFHealthy    = "nfp_nf_healthy"
	metricNFPanics     = "nfp_nf_panics_total"
	metricNFPanicDrops = "nfp_nf_panic_drops_total"
	metricNFUnhealthy  = "nfp_nf_unhealthy_drops_total"
	metricRingSheds    = "nfp_ring_sheds_total"
	metricDrops        = "nfp_drops_total"
	metricE2ELatency   = "nfp_e2e_latency_ns"
	metricCacheHits    = "nfp_classifier_cache_hits_total"
	metricCacheMisses  = "nfp_classifier_cache_misses_total"
	metricCacheEvicts  = "nfp_classifier_cache_evictions_total"
)

// Gauges the diagnoser exports back into the registry (created with
// the idempotent Registry.Gauge, so re-creating a Diagnoser over the
// same registry is safe).
const (
	gaugeRhoMilli     = "nfp_nf_rho_milli"
	gaugeHealthState  = "nfp_health_state"
	gaugeSLOTargetP99 = "nfp_slo_p99_target_ns"
	gaugeSLOBurnMilli = "nfp_slo_burn_milli"
)

// Config parameterizes a Diagnoser. Zero values get defaults.
type Config struct {
	// Registry is the metric registry to sample (required).
	Registry *telemetry.Registry
	// Interval between background samples (default 1s). Ignored by
	// SampleNow callers.
	Interval time.Duration
	// Window is how many samples the ring retains (default 60); rates
	// and deltas span oldest→newest retained sample.
	Window int
	// SLOTargetP99 is the per-chain p99 latency objective. Zero means
	// no SLO is configured and SLO evaluation is skipped.
	SLOTargetP99 time.Duration
	// TopK, when set, is served at /debug/topflows and reported by
	// Report. The sketch is fed by the dataplane, not the sampler.
	TopK *TopK
	// RhoDegraded / RhoOverloaded are the utilization thresholds for
	// the health state machine (defaults 0.8 and 0.95).
	RhoDegraded   float64
	RhoOverloaded float64
	// Recorder, when set, receives one health event per state
	// transition on the flight recorder's event ring (see also
	// SetRecorder — nfpd builds the diagnoser before the server that
	// owns the recorder).
	Recorder *flightrec.Recorder
	// OnTransition fires — off the hot path, on the sampler goroutine —
	// when the health state WORSENS to degraded or overloaded: the
	// incident-snapshot trigger hook. Recoveries and first verdicts are
	// recorded on the event ring but do not fire it.
	OnTransition func(old, new string, reasons []string)
}

// sample is one point of the time series: the summary snapshot plus
// full-bucket histogram snapshots of the families rates and window
// percentiles are computed from.
type sample struct {
	ts    time.Time
	snap  telemetry.Snapshot
	hists map[string]telemetry.HistSnapshot // histKey(family, labels)
}

// Diagnoser owns the sampling ring and the derived verdicts.
type Diagnoser struct {
	cfg Config

	mu        sync.Mutex
	ring      []sample
	head      int // next write position
	n         int // filled entries
	prevState string
	stopped   chan struct{}
	done      chan struct{}
}

// New creates a Diagnoser over cfg.Registry. Call Start for background
// sampling, or SampleNow for explicit (test-driven) sampling.
func New(cfg Config) *Diagnoser {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Window < 2 {
		cfg.Window = 60
	}
	if cfg.RhoDegraded <= 0 {
		cfg.RhoDegraded = 0.8
	}
	if cfg.RhoOverloaded <= 0 {
		cfg.RhoOverloaded = 0.95
	}
	return &Diagnoser{cfg: cfg, ring: make([]sample, cfg.Window)}
}

// SetRecorder wires the flight recorder after construction — nfpd
// builds the diagnoser (the server's FlowObserver) before the server
// that owns the recorder exists. Call before Start.
func (d *Diagnoser) SetRecorder(rec *flightrec.Recorder) { d.cfg.Recorder = rec }

// SetOnTransition wires the worsening-transition hook after
// construction (see Config.OnTransition). Call before Start.
func (d *Diagnoser) SetOnTransition(fn func(old, new string, reasons []string)) {
	d.cfg.OnTransition = fn
}

// Start launches the background sampling loop. Stop once per Start.
func (d *Diagnoser) Start() {
	d.mu.Lock()
	if d.stopped != nil {
		d.mu.Unlock()
		return
	}
	d.stopped = make(chan struct{})
	d.done = make(chan struct{})
	stop, done := d.stopped, d.done
	d.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(d.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				d.SampleNow()
			}
		}
	}()
}

// Stop halts the background loop and waits for it to exit. Safe to
// call without Start, or twice.
func (d *Diagnoser) Stop() {
	d.mu.Lock()
	stop, done := d.stopped, d.done
	d.stopped, d.done = nil, nil
	d.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// SampleNow takes one sample immediately and refreshes the exported
// gauges. Tests drive the ring deterministically through it.
func (d *Diagnoser) SampleNow() {
	d.sampleAt(time.Now())
}

func (d *Diagnoser) sampleAt(ts time.Time) {
	reg := d.cfg.Registry
	s := sample{ts: ts, snap: reg.Snapshot(), hists: map[string]telemetry.HistSnapshot{}}
	for _, fam := range []string{metricNFSvcTime, metricE2ELatency} {
		for _, hs := range reg.HistogramFamily(fam) {
			s.hists[histKey(fam, hs.Labels)] = hs.H.Snapshot()
		}
	}
	d.mu.Lock()
	d.ring[d.head] = s
	d.head = (d.head + 1) % len(d.ring)
	if d.n < len(d.ring) {
		d.n++
	}
	d.mu.Unlock()
	rep := d.Report()
	d.exportGauges(rep)
	d.noteTransition(rep)
}

// noteTransition compares the fresh verdict against the previous one:
// every change lands as a health event on the flight recorder's ring,
// and a worsening to degraded/overloaded fires the OnTransition hook
// (the incident-snapshot trigger). The first verdict seeds the state
// without an event — a booting server is not an incident.
func (d *Diagnoser) noteTransition(rep HealthReport) {
	d.mu.Lock()
	old := d.prevState
	d.prevState = rep.State
	d.mu.Unlock()
	if old == "" || old == rep.State {
		return
	}
	if rec := d.cfg.Recorder; rec != nil {
		rec.Event(flightrec.Note{
			Kind:   flightrec.KindHealth,
			Detail: rec.Intern(old + "->" + rep.State),
		})
	}
	worse := rep.State == StateOverloaded ||
		rep.State == StateDegraded && old != StateOverloaded
	if worse && d.cfg.OnTransition != nil {
		d.cfg.OnTransition(old, rep.State, rep.Reasons)
	}
}

// window returns the oldest and newest retained samples. ok is false
// until two samples exist.
func (d *Diagnoser) window() (oldest, newest sample, n int, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n < 2 {
		return sample{}, sample{}, d.n, false
	}
	newestIdx := (d.head - 1 + len(d.ring)) % len(d.ring)
	oldestIdx := (d.head - d.n + len(d.ring)) % len(d.ring)
	return d.ring[oldestIdx], d.ring[newestIdx], d.n, true
}

// histKey renders a family name plus sorted labels as a map key.
func histKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		b.WriteByte('|')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// exportGauges publishes the report's headline numbers back into the
// registry so any Prometheus scraper sees the diagnosis too.
func (d *Diagnoser) exportGauges(rep HealthReport) {
	reg := d.cfg.Registry
	reg.Gauge(gaugeHealthState).Set(int64(stateValue(rep.State)))
	if d.cfg.SLOTargetP99 > 0 {
		reg.Gauge(gaugeSLOTargetP99).Set(int64(d.cfg.SLOTargetP99))
	}
	for _, nf := range rep.Bottlenecks {
		reg.Gauge(gaugeRhoMilli,
			telemetry.L("nf", nf.NF), telemetry.L("mid", nf.MID),
		).Set(int64(nf.Rho * 1000))
	}
	for _, slo := range rep.SLO {
		reg.Gauge(gaugeSLOBurnMilli, telemetry.L("mid", slo.MID)).Set(int64(slo.BurnRate * 1000))
	}
}
