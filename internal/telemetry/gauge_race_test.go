package telemetry

import (
	"sync"
	"testing"
)

// TestGaugeSetMaxConcurrent hammers SetMax from many goroutines and
// checks the CAS loop's high-water contract: the final value is the
// global maximum ever offered — concurrent lower offers can never
// clobber a higher one, regardless of interleaving.
func TestGaugeSetMaxConcurrent(t *testing.T) {
	g := NewGauge()
	const (
		workers = 16
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				// Worker w offers values in [w*perW, (w+1)*perW), shuffled
				// so offers are non-monotonic within each worker too.
				v := int64(w*perW + (i*7919)%perW)
				g.SetMax(v)
			}
		}(w)
	}
	wg.Wait()
	want := int64(workers*perW - 1)
	if got := g.Value(); got != want {
		t.Fatalf("after concurrent SetMax: %d, want global max %d", got, want)
	}
	// A late lower offer must not lower the mark.
	g.SetMax(1)
	if got := g.Value(); got != want {
		t.Fatalf("lower offer moved the high-water mark: %d", got)
	}
}

// TestGaugeSetMaxInterleavedWithSet checks that SetMax raises from
// whatever Set last stored (Set is an unconditional store, SetMax a
// conditional raise).
func TestGaugeSetMaxInterleavedWithSet(t *testing.T) {
	g := NewGauge()
	g.SetMax(100)
	g.Set(10) // unconditional: lowers
	if got := g.Value(); got != 10 {
		t.Fatalf("Set after SetMax: %d, want 10", got)
	}
	g.SetMax(50)
	if got := g.Value(); got != 50 {
		t.Fatalf("SetMax after Set: %d, want 50", got)
	}
	g.SetMax(-5)
	if got := g.Value(); got != 50 {
		t.Fatalf("negative offer lowered the mark: %d", got)
	}
}

// TestSnapshotLookupMissPaths pins the zero-value contract of the
// snapshot accessors: an absent name, a label-set mismatch (extra,
// missing, or different value), and a kind mismatch all return 0
// rather than panicking or matching loosely.
func TestSnapshotLookupMissPaths(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits", L("nf", "fw")).Add(7)
	r.Gauge("depth", L("nf", "fw"), L("mid", "1")).Set(9)
	s := r.Snapshot()

	if v := s.CounterValue("nope"); v != 0 {
		t.Fatalf("absent counter name: %d, want 0", v)
	}
	if v := s.CounterValue("hits"); v != 0 {
		t.Fatalf("counter with labels looked up label-less: %d, want 0", v)
	}
	if v := s.CounterValue("hits", L("nf", "ids")); v != 0 {
		t.Fatalf("wrong label value: %d, want 0", v)
	}
	if v := s.CounterValue("hits", L("nf", "fw"), L("mid", "1")); v != 0 {
		t.Fatalf("extra label: %d, want 0", v)
	}
	if v := s.CounterValue("hits", L("nf", "fw")); v != 7 {
		t.Fatalf("exact match: %d, want 7", v)
	}
	// Label order must not matter on the hit path.
	if v := s.GaugeValue("depth", L("mid", "1"), L("nf", "fw")); v != 9 {
		t.Fatalf("label order changed lookup: %d, want 9", v)
	}
	if v := s.GaugeValue("depth", L("nf", "fw")); v != 0 {
		t.Fatalf("missing label: %d, want 0", v)
	}
	if v := s.GaugeValue("hits", L("nf", "fw")); v != 0 {
		t.Fatalf("counter looked up as gauge: %d, want 0", v)
	}
	if v := s.GaugeValue("absent"); v != 0 {
		t.Fatalf("absent gauge: %d, want 0", v)
	}
}
