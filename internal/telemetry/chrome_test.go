package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestChromeTraceGolden locks down the exporter's output byte-for-byte
// on a fixed span set and checks the result passes the schema
// validator. Regenerate with: go test ./internal/telemetry -run
// ChromeTraceGolden -update
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, parallelSpans()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (rerun with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace output drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Errorf("exporter output fails its own schema validator: %v", err)
	}
}

// TestChromeTraceEmpty checks the degenerate export is still a valid
// document (empty traceEvents array, not null).
func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Errorf("empty trace invalid: %v", err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"traceEvents": null`)) {
		t.Error("empty trace emitted null traceEvents")
	}
}

// TestValidateChromeTraceRejects checks the validator's negative space:
// each malformed document must produce an error.
func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":           `{`,
		"missing events":     `{"displayTimeUnit":"ns"}`,
		"bad time unit":      `{"traceEvents":[],"displayTimeUnit":"fortnights"}`,
		"unknown ph":         `{"traceEvents":[{"ph":"Z","name":"x","ts":0,"dur":0,"pid":1,"tid":1}],"displayTimeUnit":"ns"}`,
		"missing ph":         `{"traceEvents":[{"name":"x","ts":0,"dur":0,"pid":1,"tid":1}],"displayTimeUnit":"ns"}`,
		"X without name":     `{"traceEvents":[{"ph":"X","ts":0,"dur":0,"pid":1,"tid":1}],"displayTimeUnit":"ns"}`,
		"X empty name":       `{"traceEvents":[{"ph":"X","name":"","ts":0,"dur":0,"pid":1,"tid":1}],"displayTimeUnit":"ns"}`,
		"X missing ts":       `{"traceEvents":[{"ph":"X","name":"x","dur":0,"pid":1,"tid":1}],"displayTimeUnit":"ns"}`,
		"X negative dur":     `{"traceEvents":[{"ph":"X","name":"x","ts":0,"dur":-5,"pid":1,"tid":1}],"displayTimeUnit":"ns"}`,
		"X string pid":       `{"traceEvents":[{"ph":"X","name":"x","ts":0,"dur":0,"pid":"one","tid":1}],"displayTimeUnit":"ns"}`,
		"M unknown metadata": `{"traceEvents":[{"ph":"M","name":"color_name","args":{"name":"x"}}],"displayTimeUnit":"ns"}`,
		"M without args":     `{"traceEvents":[{"ph":"M","name":"process_name"}],"displayTimeUnit":"ns"}`,
		"M empty args name":  `{"traceEvents":[{"ph":"M","name":"thread_name","args":{"name":""}}],"displayTimeUnit":"ns"}`,
	}
	for name, doc := range cases {
		if err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s: validator accepted %s", name, doc)
		}
	}

	// And the tolerated phases pass.
	ok := `{"traceEvents":[{"ph":"i","name":"marker"},{"ph":"B","name":"b"},{"ph":"E"}],"displayTimeUnit":"ms"}`
	if err := ValidateChromeTrace([]byte(ok)); err != nil {
		t.Errorf("tolerated phases rejected: %v", err)
	}
}
