package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter()
	const goroutines, perG = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestGaugeSetMax(t *testing.T) {
	g := NewGauge()
	g.Set(10)
	g.SetMax(5)
	if g.Value() != 10 {
		t.Errorf("SetMax lowered the gauge to %d", g.Value())
	}
	g.SetMax(42)
	if g.Value() != 42 {
		t.Errorf("SetMax did not raise the gauge: %d", g.Value())
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(v int64) {
			defer wg.Done()
			for j := int64(0); j < 1000; j++ {
				g.SetMax(v * j)
			}
		}(int64(i + 1))
	}
	wg.Wait()
	if g.Value() != 8*999 {
		t.Errorf("concurrent SetMax = %d, want %d", g.Value(), 8*999)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	var tr *Tracer
	c.Add(1)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	h.Record(1)
	h.Merge(nil)
	if h.Count() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil histogram recorded")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Error("nil registry returned a metric")
	}
	r.MustRegisterCounter("x", NewCounter())
	if len(r.Snapshot().Counters) != 0 {
		t.Error("nil registry snapshot non-empty")
	}
	if tr.Sampled(1) {
		t.Error("nil tracer samples")
	}
	tr.Record(1, 1, StageNF, "x", 0)
	if tr.Events() != nil || tr.ByPID() != nil {
		t.Error("nil tracer retained events")
	}
}

func TestRegistryIdentityAndLabels(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits", L("nf", "ids"))
	b := r.Counter("hits", L("nf", "ids"))
	if a != b {
		t.Error("same name+labels returned different counters")
	}
	// Label order must not split the series.
	c := r.Counter("multi", L("a", "1"), L("b", "2"))
	d := r.Counter("multi", L("b", "2"), L("a", "1"))
	if c != d {
		t.Error("label order split the series")
	}
	if r.Counter("hits", L("nf", "lb")) == a {
		t.Error("different labels shared a counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind change did not panic")
		}
	}()
	r.Gauge("hits", L("nf", "ids"))
}

func TestRegistryDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.MustRegisterCounter("pool_allocs", NewCounter())
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.MustRegisterCounter("pool_allocs", NewCounter())
}

func TestSnapshotAccessors(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", L("k", "v")).Add(7)
	r.Counter("c", L("k", "w")).Add(5)
	r.Gauge("g").Set(-3)
	r.Histogram("h").Record(1000)
	s := r.Snapshot()
	if got := s.CounterValue("c", L("k", "v")); got != 7 {
		t.Errorf("CounterValue = %d, want 7", got)
	}
	if got := s.SumCounters("c"); got != 12 {
		t.Errorf("SumCounters = %d, want 12", got)
	}
	if got := s.GaugeValue("g"); got != -3 {
		t.Errorf("GaugeValue = %d, want -3", got)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Count != 1 {
		t.Errorf("histogram snapshot missing: %+v", s.Histograms)
	}
}

func TestWritePrometheusGroupsFamilies(t *testing.T) {
	r := NewRegistry()
	// Interleave registrations of the same family to prove grouping.
	r.Counter("load", L("instance", "0")).Add(1)
	r.Counter("other").Add(1)
	r.Counter("load", L("instance", "1")).Add(2)
	r.Gauge("depth").Set(9)
	r.Histogram("svc_ns").Record(500)
	var sb strings.Builder
	r.Snapshot().WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE load counter",
		`load{instance="0"} 1`,
		`load{instance="1"} 2`,
		"# TYPE depth gauge",
		"depth 9",
		"# TYPE svc_ns summary",
		`svc_ns{quantile="0.5"}`,
		"svc_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Family samples must be contiguous: both load series directly
	// follow the load TYPE line.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i, line := range lines {
		if line == "# TYPE load counter" {
			if !strings.HasPrefix(lines[i+1], "load{") || !strings.HasPrefix(lines[i+2], "load{") {
				t.Errorf("load family not grouped:\n%s", out)
			}
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("nfp_injected_total").Add(42)
	tr := NewTracer(1, 16)
	tr.Record(7, 1, StageClassify, "classifier", 100)
	tr.Record(7, 1, StageOutput, "", 200)
	srv := httptest.NewServer(Handler(r, tr))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(sb.String(), "nfp_injected_total 42") {
		t.Errorf("/metrics missing counter:\n%s", sb.String())
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	var dump Dump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dump.Metrics.CounterValue("nfp_injected_total") != 42 {
		t.Error("JSON dump lost the counter")
	}
	if len(dump.Traces) != 2 || dump.Traces[0].Stage != StageClassify {
		t.Errorf("JSON dump traces wrong: %+v", dump.Traces)
	}
}
