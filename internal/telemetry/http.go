package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// promName sanitizes a metric name for the Prometheus text format.
func promName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		}
		return '_'
	}, s)
}

// promLabels renders a label map (plus extras) as {k="v",...}.
func promLabels(labels map[string]string, extra ...Label) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, k := range keys {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%s=%q", promName(k), labels[k])
	}
	for _, l := range extra {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%s=%q", promName(l.Key), l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, with every family's samples grouped under one TYPE line as
// the format requires. Histograms emit as summaries (quantile series
// plus _sum and _count), which keeps the hot-path histogram's log
// buckets an internal detail.
func (s Snapshot) WritePrometheus(w io.Writer) {
	type family struct {
		kind  string
		lines []string
	}
	var order []string
	families := map[string]*family{}
	add := func(name, kind, line string) {
		f := families[name]
		if f == nil {
			f = &family{kind: kind}
			families[name] = f
			order = append(order, name)
		}
		f.lines = append(f.lines, line)
	}
	for _, c := range s.Counters {
		name := promName(c.Name)
		add(name, "counter", fmt.Sprintf("%s%s %d", name, promLabels(c.Labels), c.Value))
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		add(name, "gauge", fmt.Sprintf("%s%s %d", name, promLabels(g.Labels), g.Value))
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		for _, q := range []struct {
			q string
			v uint64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
			add(name, "summary", fmt.Sprintf("%s%s %d", name, promLabels(h.Labels, L("quantile", q.q)), q.v))
		}
		add(name, "summary", fmt.Sprintf("%s_sum%s %d", name, promLabels(h.Labels), h.Sum))
		add(name, "summary", fmt.Sprintf("%s_count%s %d", name, promLabels(h.Labels), h.Count))
	}
	for _, name := range order {
		f := families[name]
		fmt.Fprintf(w, "# TYPE %s %s\n", name, f.kind)
		for _, line := range f.lines {
			fmt.Fprintln(w, line)
		}
	}
}

// Dump is the /debug/telemetry JSON document: the full metric snapshot
// plus the retained trace events, stamped with the serving process's
// uptime so incident bundles and scrapes are self-describing.
type Dump struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Metrics       Snapshot     `json:"metrics"`
	Traces        []TraceEvent `json:"traces,omitempty"`
}

// SpansDump is the /debug/spans JSON document: per-packet span groups
// plus the count of packets whose trace head was evicted.
type SpansDump struct {
	TruncatedPIDs int                     `json:"truncated_pids"`
	Spans         map[uint64][]TraceEvent `json:"spans"`
}

// Handler serves the introspection endpoints:
//
//	/metrics             Prometheus text format
//	/debug/telemetry     JSON Dump (metrics + traces)
//	/debug/spans         per-PID span groups (?format=chrome for the
//	                     Chrome trace-event JSON export)
//	/debug/criticalpath  per-MID latency attribution + parallel speedup
//	/debug/pprof/...     the standard Go profiles (always mounted)
//
// reg and tr may be nil (empty sections).
func Handler(reg *Registry, tr *Tracer) http.Handler {
	return HandlerWith(reg, tr, nil)
}

// HandlerWith is Handler plus caller-supplied endpoints (pattern →
// handler), the hook subsystems layered above telemetry (diagnosis,
// future control surfaces) use to join the same introspection server.
// Extra patterns must not collide with the built-in ones.
func HandlerWith(reg *Registry, tr *Tracer, extra map[string]http.Handler) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	for pattern, h := range extra {
		mux.Handle(pattern, h)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(Dump{
			UptimeSeconds: time.Since(start).Seconds(),
			Metrics:       reg.Snapshot(),
			Traces:        tr.Events(),
		})
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("format") == "chrome" {
			_ = WriteChromeTrace(w, tr.Events())
			return
		}
		spans, truncated := tr.GroupByPID()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(SpansDump{TruncatedPIDs: truncated, Spans: spans})
	})
	mux.HandleFunc("/debug/criticalpath", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(BuildCriticalPathReport(tr.Events()))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves Handler in a background goroutine. It
// returns the server (for Close/Shutdown) and the bound address — so
// ":0" callers learn their port. Errors after binding are the server's
// to log; binding errors return immediately.
func Serve(addr string, reg *Registry, tr *Tracer) (*http.Server, string, error) {
	return ServeWith(addr, reg, tr, nil)
}

// ServeWith is Serve with extra endpoints (see HandlerWith).
func ServeWith(addr string, reg *Registry, tr *Tracer, extra map[string]http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: HandlerWith(reg, tr, extra)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
