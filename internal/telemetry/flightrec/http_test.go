package flightrec

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"nfp/internal/telemetry"
)

func getJSON(t *testing.T, h http.Handler, url string, into any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if into != nil && w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), into); err != nil {
			t.Fatalf("GET %s: %v\n%s", url, err, w.Body.String())
		}
	}
	return w
}

// TestHandlerStatus: the status report carries the ledger verdict, the
// event tail, the spool index and the build info.
func TestHandlerStatus(t *testing.T) {
	rec := NewRecorder(Config{})
	rec.Event(Note{Kind: KindInstall, Gen: 1})
	reg := telemetry.NewRegistry()
	reg.Counter(MetricDrops).Add(1)
	reg.Counter(MetricDrops, telemetry.L("cause", "nf_verdict")).Add(1)
	sn := testSnapshotter(t, SnapConfig{Recorder: rec, Registry: reg, MinInterval: time.Hour})
	if _, err := sn.WriteBundle("panic:x"); err != nil {
		t.Fatal(err)
	}
	h := Handler(rec, reg, sn, map[string]string{"version": "t"})

	var st Status
	if w := getJSON(t, h, "/debug/flightrecorder", &st); w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if !st.LedgerOK || st.Ledger.TotalDrops != 1 {
		t.Fatalf("ledger: %+v (err %q)", st.Ledger, st.LedgerErr)
	}
	if st.SpoolDir != sn.Dir() || st.Written != 1 || len(st.Incidents) != 1 {
		t.Fatalf("spool section: %+v", st)
	}
	if len(st.Events) != 1 || st.Events[0].Kind != "install" {
		t.Fatalf("events: %+v", st.Events)
	}
	if st.Build["version"] != "t" {
		t.Fatalf("build: %v", st.Build)
	}

	// A broken ledger flips the verdict but still serves.
	reg.Counter(MetricDrops).Add(5)
	st = Status{}
	getJSON(t, h, "/debug/flightrecorder", &st)
	if st.LedgerOK || st.LedgerErr == "" {
		t.Fatalf("broken ledger not reported: %+v", st)
	}

	// ?n caps the event tail.
	rec.Event(Note{Kind: KindRestart})
	st = Status{}
	getJSON(t, h, "/debug/flightrecorder?n=1", &st)
	if len(st.Events) != 1 {
		t.Fatalf("?n=1 returned %d events", len(st.Events))
	}
}

// TestHandlerIncident: the ?incident path serves exactly bare
// incident-*.json basenames from the spool — nothing else.
func TestHandlerIncident(t *testing.T) {
	rec := NewRecorder(Config{})
	sn := testSnapshotter(t, SnapConfig{Recorder: rec, MinInterval: time.Hour})
	path, err := sn.WriteBundle("panic:x")
	if err != nil {
		t.Fatal(err)
	}
	h := Handler(rec, nil, sn, nil)

	entries, _ := ListSpool(sn.Dir())
	var b Bundle
	if w := getJSON(t, h, "/debug/flightrecorder?incident="+entries[0].File, &b); w.Code != http.StatusOK {
		t.Fatalf("serve bundle = %d", w.Code)
	}
	if b.Schema != BundleSchema || b.Reason != "panic:x" {
		t.Fatalf("served bundle: %+v", b)
	}
	_ = path

	for _, bad := range []string{
		"..%2F..%2Fetc%2Fpasswd",
		"incident-1-x.txt",
		"x.json",
		"sub%2Fincident-1-x.json",
	} {
		if w := getJSON(t, h, "/debug/flightrecorder?incident="+bad, nil); w.Code != http.StatusBadRequest {
			t.Fatalf("incident=%s = %d, want 400", bad, w.Code)
		}
	}
	if w := getJSON(t, h, "/debug/flightrecorder?incident=incident-1-missing.json", nil); w.Code != http.StatusNotFound {
		t.Fatalf("missing bundle = %d, want 404", w.Code)
	}
}

// TestHandlerNilSections: every collaborator may be nil — the status
// endpoint still answers and the incident path 404s without a spool.
func TestHandlerNilSections(t *testing.T) {
	h := Handler(nil, nil, nil, nil)
	var st Status
	if w := getJSON(t, h, "/debug/flightrecorder", &st); w.Code != http.StatusOK {
		t.Fatalf("nil-sections status = %d", w.Code)
	}
	if st.SpoolDir != "" || len(st.Events) != 0 || st.LedgerOK {
		t.Fatalf("nil-sections report: %+v", st)
	}
	if w := getJSON(t, h, "/debug/flightrecorder?incident=incident-1-x.json", nil); w.Code != http.StatusNotFound {
		t.Fatalf("no-spool incident = %d, want 404", w.Code)
	}
}
