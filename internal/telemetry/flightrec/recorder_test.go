package flightrec

import (
	"net/netip"
	"sync"
	"testing"

	"nfp/internal/flow"
)

// TestRecorderNilSafe: every method must no-op on a nil receiver so
// the ablation build needs no call-site guards.
func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	if id := r.Intern("x"); id != 0 {
		t.Fatalf("nil Intern = %d, want 0", id)
	}
	if r.SampleDrop(0) {
		t.Fatal("nil SampleDrop must be false")
	}
	r.Drop(DropRecord{})
	r.Event(Note{Kind: KindPanic})
	r.SetOnIncident(func(string) { t.Fatal("hook fired on nil recorder") })
	r.Incident("x")
	if evs := r.Events(0); evs != nil {
		t.Fatalf("nil Events returned %d events", len(evs))
	}
}

// TestRecorderDropDecode round-trips a full DropRecord through the
// packed ring word format.
func TestRecorderDropDecode(t *testing.T) {
	r := NewRecorder(Config{Shards: 2, StageNames: func(s uint8) string {
		if s == 3 {
			return "ring_wait"
		}
		return "?"
	}})
	node := r.Intern("firewall")
	r.Drop(DropRecord{
		Shard: 1, Cause: CausePanic, Stage: 3, Gen: 7, Node: node,
		PID: 12345, Cursor: 999,
		Flow: flow.Key{
			SrcIP: netip.MustParseAddr("10.1.2.3"), DstIP: netip.MustParseAddr("10.4.5.6"),
			SrcPort: 4242, DstPort: 80, Proto: 6,
		},
		HasKey: true,
	})
	evs := r.Events(0)
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Kind != "drop" || e.Cause != "panic" || e.Stage != "ring_wait" ||
		e.Shard != 1 || e.Gen != 7 || e.Node != "firewall" ||
		e.PID != 12345 || e.Cursor != 999 {
		t.Fatalf("decoded event mismatch: %+v", e)
	}
	if e.Flow != "10.1.2.3:4242>10.4.5.6:80/6" {
		t.Fatalf("flow rendered %q", e.Flow)
	}
	if e.TS == 0 {
		t.Fatal("timestamp not stamped")
	}
}

// TestRecorderNoteDecode round-trips a Note with interned node and
// detail strings.
func TestRecorderNoteDecode(t *testing.T) {
	r := NewRecorder(Config{})
	r.Event(Note{
		Kind: KindHealth, Gen: 3,
		Node:   r.Intern("monitor"),
		Detail: r.Intern("healthy->degraded"),
		Count:  11,
	})
	evs := r.Events(0)
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Kind != "health" || e.Gen != 3 || e.Node != "monitor" ||
		e.Detail != "healthy->degraded" || e.Count != 11 {
		t.Fatalf("decoded note mismatch: %+v", e)
	}
	if e.Cause != "" || e.Flow != "" {
		t.Fatalf("non-drop note leaked drop fields: %+v", e)
	}
}

// TestRecorderIncidentHook: KindPanic and KindReloadFailed fire the
// anomaly hook with a descriptive reason; benign kinds do not.
func TestRecorderIncidentHook(t *testing.T) {
	r := NewRecorder(Config{})
	var mu sync.Mutex
	var reasons []string
	r.SetOnIncident(func(reason string) {
		mu.Lock()
		reasons = append(reasons, reason)
		mu.Unlock()
	})
	r.Event(Note{Kind: KindRestart})
	r.Event(Note{Kind: KindReloadSwap})
	r.Event(Note{Kind: KindPanic, Node: r.Intern("ids")})
	r.Event(Note{Kind: KindReloadFailed, Detail: r.Intern("compile error")})
	mu.Lock()
	defer mu.Unlock()
	if len(reasons) != 2 {
		t.Fatalf("hook fired %d times (%v), want 2", len(reasons), reasons)
	}
	if reasons[0] != "panic:ids" {
		t.Fatalf("panic reason = %q", reasons[0])
	}
	if reasons[1] != "reload_failed:compile error" {
		t.Fatalf("reload-failed reason = %q", reasons[1])
	}
	// Uninstalling the hook stops delivery.
	r.SetOnIncident(nil)
	r.Event(Note{Kind: KindPanic})
	if len(reasons) != 2 {
		t.Fatal("hook fired after uninstall")
	}
}

// TestSampleDropMask: the PID mask samples ~1/rate uniformly and rate
// is rounded up to a power of two.
func TestSampleDropMask(t *testing.T) {
	every := NewRecorder(Config{DropSampleRate: 1})
	for pid := uint64(0); pid < 16; pid++ {
		if !every.SampleDrop(pid) {
			t.Fatalf("rate 1 must sample every drop (pid %d)", pid)
		}
	}
	quarter := NewRecorder(Config{DropSampleRate: 3}) // rounds up to 4
	var hits int
	for pid := uint64(0); pid < 64; pid++ {
		if quarter.SampleDrop(pid) {
			hits++
		}
	}
	if hits != 16 {
		t.Fatalf("rate 3 (rounded to 4) sampled %d/64, want 16", hits)
	}
}

// TestIntern: stable IDs, idempotent, and the empty string is the
// reserved zero ID.
func TestIntern(t *testing.T) {
	r := NewRecorder(Config{})
	if id := r.Intern(""); id != 0 {
		t.Fatalf(`Intern("") = %d, want 0`, id)
	}
	a, b := r.Intern("monitor"), r.Intern("firewall")
	if a == b || a == 0 || b == 0 {
		t.Fatalf("interned IDs collide: %d %d", a, b)
	}
	if again := r.Intern("monitor"); again != a {
		t.Fatalf("Intern not idempotent: %d then %d", a, again)
	}
	if name := r.name(a); name != "monitor" {
		t.Fatalf("name(%d) = %q", a, name)
	}
}

// TestKindStrings pins the kind name table (bundle consumers parse
// these).
func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindDrop: "drop", KindPanic: "panic", KindRestart: "restart",
		KindRestartFail: "restart_fail", KindShed: "shed",
		KindBackpressure: "backpressure", KindHealth: "health",
		KindReloadSwap: "reload_swap", KindReloadDrained: "reload_drained",
		KindReloadFailed: "reload_failed", KindInstall: "install", KindStop: "stop",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind %d = %q, want %q", k, k.String(), s)
		}
	}
}
