package flightrec

import (
	"sync"
	"testing"
)

// TestRingWrap: a full lap overwrites the oldest entries and snapshot
// returns only the newest window, in ticket order.
func TestRingWrap(t *testing.T) {
	r := newRing(8)
	const n = 20
	for i := 0; i < n; i++ {
		r.record(rawEvent{uint64(i), uint64(i) * 7})
	}
	got := r.snapshot(0)
	if len(got) != 8 {
		t.Fatalf("snapshot after wrap returned %d events, want 8", len(got))
	}
	for i, e := range got {
		want := uint64(n - 8 + i)
		if e[0] != want || e[1] != want*7 {
			t.Fatalf("slot %d = {%d,%d}, want {%d,%d}", i, e[0], e[1], want, want*7)
		}
	}
}

// TestRingSnapshotMax caps the tail without disturbing order.
func TestRingSnapshotMax(t *testing.T) {
	r := newRing(8)
	for i := 0; i < 6; i++ {
		r.record(rawEvent{uint64(i)})
	}
	got := r.snapshot(3)
	if len(got) != 3 {
		t.Fatalf("snapshot(3) returned %d events", len(got))
	}
	for i, e := range got {
		if e[0] != uint64(3+i) {
			t.Fatalf("snapshot(3)[%d] = %d, want %d", i, e[0], 3+i)
		}
	}
	if len(r.snapshot(0)) != 6 {
		t.Fatal("max<=0 must return the whole retained window")
	}
}

// TestRingRoundsUpToPowerOfTwo: capacity requests are rounded, never
// truncated.
func TestRingRoundsUpToPowerOfTwo(t *testing.T) {
	r := newRing(9)
	if len(r.slots) != 16 {
		t.Fatalf("newRing(9) allocated %d slots, want 16", len(r.slots))
	}
}

// TestRingConcurrent is the seqlock soundness test (run under -race):
// several writers racing a snapshotting reader must never produce a
// torn event — every event the reader sees is internally consistent
// (the payload words are a deterministic function of word 0).
func TestRingConcurrent(t *testing.T) {
	r := newRing(64)
	const writers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Reader: snapshot continuously until writers finish, checking
	// every observed event for self-consistency.
	readerDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				readerDone <- nil
				return
			default:
			}
			for _, e := range r.snapshot(0) {
				if e[1] != e[0]*3+1 || e[2] != e[0]^0xdeadbeef {
					readerDone <- &tornEvent{e}
					return
				}
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := uint64(w*perWriter + i)
				r.record(rawEvent{v, v*3 + 1, v ^ 0xdeadbeef})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}

	// After the dust settles every retained event is consistent and
	// the window is full.
	final := r.snapshot(0)
	if len(final) != 64 {
		t.Fatalf("retained %d events after %d writes, want 64", len(final), writers*perWriter)
	}
	for _, e := range final {
		if e[1] != e[0]*3+1 || e[2] != e[0]^0xdeadbeef {
			t.Fatalf("torn event at rest: %v", e)
		}
	}
}

type tornEvent struct{ e rawEvent }

func (t *tornEvent) Error() string { return "torn event observed by concurrent reader" }
