package flightrec

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nfp/internal/flow"
)

// Kind is the event-ring record type.
type Kind uint8

const (
	// KindNone marks an empty slot (never emitted).
	KindNone Kind = iota
	// KindDrop is a PID-sampled terminal packet drop with provenance.
	KindDrop
	// KindPanic is an NF panic (triggers an incident snapshot).
	KindPanic
	// KindRestart is a supervised NF restart succeeding.
	KindRestart
	// KindRestartFail is a supervised NF restart failing.
	KindRestartFail
	// KindShed is a backpressure shed discarding a burst.
	KindShed
	// KindBackpressure is a producer parking on a full ring under the
	// block policy (one event per engagement, not per spin).
	KindBackpressure
	// KindHealth is a diagnose health-state transition.
	KindHealth
	// KindReloadSwap is a config generation going live.
	KindReloadSwap
	// KindReloadDrained is a superseded generation finishing its drain.
	KindReloadDrained
	// KindReloadFailed is a reload attempt that never swapped
	// (compile/validation error; triggers an incident snapshot).
	KindReloadFailed
	// KindInstall is the initial graph installation.
	KindInstall
	// KindStop is the server stopping after conservation was reached.
	KindStop
)

var kindNames = [...]string{
	"none", "drop", "panic", "restart", "restart_fail", "shed",
	"backpressure", "health", "reload_swap", "reload_drained",
	"reload_failed", "install", "stop",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one decoded event-ring record, ready for JSON.
type Event struct {
	TS     int64  `json:"ts_ns"`
	Kind   string `json:"kind"`
	Shard  int    `json:"shard"`
	Gen    uint64 `json:"gen,omitempty"`
	Cause  string `json:"cause,omitempty"`
	Stage  string `json:"stage,omitempty"`
	Node   string `json:"node,omitempty"`
	Detail string `json:"detail,omitempty"`
	PID    uint64 `json:"pid,omitempty"`
	Flow   string `json:"flow,omitempty"`
	Cursor int64  `json:"cursor_ns,omitempty"`
	Count  uint64 `json:"count,omitempty"`
}

// DropRecord is the provenance of one sampled terminal drop.
type DropRecord struct {
	Shard  int
	Cause  Cause
	Stage  uint8 // telemetry.Stage value of where the packet died
	Gen    uint64
	Node   uint32 // interned NF name of the drop's origin node
	PID    uint64
	Cursor int64 // span cursor (ns) — how far along its path it was
	Flow   flow.Key
	HasKey bool
}

// Note is a non-drop event (panic, restart, shed, backpressure,
// health, reload lifecycle).
type Note struct {
	Shard  int
	Kind   Kind
	Gen    uint64
	Node   uint32 // interned NF/site name (0 = none)
	Detail uint32 // interned free-form detail (0 = none)
	Count  uint64
}

// StageNamer turns the packed telemetry.Stage byte back into a name;
// injected by the recorder's owner so flightrec needs no dataplane
// import. Nil falls back to the numeric value.
type StageNamer func(uint8) string

// Config sizes a Recorder.
type Config struct {
	// Shards is the number of independent event rings (>= 1).
	Shards int
	// RingSize is the per-shard ring capacity (rounded up to a power
	// of two; default 1024).
	RingSize int
	// DropSampleRate records ~1/rate terminal drops as per-drop
	// events via a PID mask (rounded up to a power of two; default 1
	// = every drop). Counters are always exact regardless.
	DropSampleRate int
	// StageNames renders stage bytes in decoded events.
	StageNames StageNamer
}

// Recorder is the always-on flight recorder: per-shard lock-free
// event rings plus a string intern table so the hot path records only
// integers. All methods are safe on a nil receiver (no-ops), so an
// ablation build can run recorder-free without guarding call sites.
type Recorder struct {
	rings      []*ring
	pidMask    uint64
	stageNames StageNamer

	mu    sync.RWMutex
	names []string
	idx   map[string]uint32

	onIncident atomic.Pointer[func(reason string)]
}

// NewRecorder builds a recorder with cfg.Shards independent rings.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1024
	}
	rate := cfg.DropSampleRate
	if rate <= 1 {
		rate = 1
	}
	mask := uint64(1)
	for mask < uint64(rate) {
		mask <<= 1
	}
	r := &Recorder{
		rings:      make([]*ring, cfg.Shards),
		pidMask:    mask - 1,
		stageNames: cfg.StageNames,
		names:      []string{""},
		idx:        map[string]uint32{"": 0},
	}
	for i := range r.rings {
		r.rings[i] = newRing(cfg.RingSize)
	}
	return r
}

// Intern maps a string to a stable small ID for event payloads. Call
// at setup time (plan build), never per packet. Safe on nil (returns
// 0).
func (r *Recorder) Intern(s string) uint32 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	id, ok := r.idx[s]
	r.mu.RUnlock()
	if ok {
		return id
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.idx[s]; ok {
		return id
	}
	id = uint32(len(r.names))
	r.names = append(r.names, s)
	r.idx[s] = id
	return id
}

func (r *Recorder) name(id uint32) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(id) < len(r.names) {
		return r.names[id]
	}
	return fmt.Sprintf("name(%d)", id)
}

// SampleDrop reports whether a drop with this PID should get a ring
// event (PID-masked sampling; counters stay exact either way). Safe
// on nil (false).
func (r *Recorder) SampleDrop(pid uint64) bool {
	return r != nil && pid&r.pidMask == 0
}

func (r *Recorder) ring(shard int) *ring {
	if shard < 0 || shard >= len(r.rings) {
		shard = 0
	}
	return r.rings[shard]
}

// word1 packs kind/cause/stage/shard/gen into one event word.
func word1(k Kind, c Cause, stage uint8, shard int, gen uint64) uint64 {
	return uint64(k) | uint64(c)<<8 | uint64(stage)<<16 |
		uint64(uint8(shard))<<24 | (gen&0xffffffff)<<32
}

// Drop records one sampled terminal drop. Alloc-free.
func (r *Recorder) Drop(d DropRecord) {
	if r == nil {
		return
	}
	var e rawEvent
	e[0] = uint64(time.Now().UnixNano())
	e[1] = word1(KindDrop, d.Cause, d.Stage, d.Shard, d.Gen)
	e[2] = uint64(d.Node)
	e[3] = d.PID
	if d.HasKey && d.Flow.SrcIP.Is4() && d.Flow.DstIP.Is4() {
		src, dst := d.Flow.SrcIP.As4(), d.Flow.DstIP.As4()
		e[4] = uint64(be32(src))<<32 | uint64(be32(dst))
		e[5] = uint64(d.Flow.SrcPort)<<48 | uint64(d.Flow.DstPort)<<32 |
			uint64(d.Flow.Proto)<<24 | 1 // low bit: flow present
	}
	e[6] = uint64(d.Cursor)
	r.ring(d.Shard).record(e)
}

// Event records one non-drop event. KindPanic and KindReloadFailed
// additionally fire the incident hook. Alloc-free on the ring path.
func (r *Recorder) Event(n Note) {
	if r == nil {
		return
	}
	var e rawEvent
	e[0] = uint64(time.Now().UnixNano())
	e[1] = word1(n.Kind, CauseUnknown, 0, n.Shard, n.Gen)
	e[2] = uint64(n.Node) | uint64(n.Detail)<<32
	e[4] = n.Count
	r.ring(n.Shard).record(e)
	if n.Kind == KindPanic || n.Kind == KindReloadFailed {
		r.Incident(n.Kind.String() + ":" + r.name(n.Node) + r.name(n.Detail))
	}
}

// SetOnIncident installs the anomaly hook (e.g. a Snapshotter's
// Trigger). The hook must be fast and non-blocking: it runs on
// dataplane goroutines. Safe on nil.
func (r *Recorder) SetOnIncident(fn func(reason string)) {
	if r == nil {
		return
	}
	if fn == nil {
		r.onIncident.Store(nil)
		return
	}
	r.onIncident.Store(&fn)
}

// Incident fires the anomaly hook directly — for triggers that have
// no ring kind of their own (health-state transitions are recorded
// separately by the diagnoser). Safe on nil.
func (r *Recorder) Incident(reason string) {
	if r == nil {
		return
	}
	if fn := r.onIncident.Load(); fn != nil {
		(*fn)(reason)
	}
}

// Events decodes the newest events across every shard ring, oldest
// first, up to max per shard (<= 0 = full retained window). Safe on
// nil (returns nil).
func (r *Recorder) Events(max int) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for _, rg := range r.rings {
		for _, e := range rg.snapshot(max) {
			out = append(out, r.decode(e))
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

func (r *Recorder) decode(e rawEvent) Event {
	k := Kind(e[1] & 0xff)
	ev := Event{
		TS:    int64(e[0]),
		Kind:  k.String(),
		Shard: int(uint8(e[1] >> 24)),
		Gen:   e[1] >> 32,
	}
	if k == KindDrop {
		c := Cause(e[1] >> 8 & 0xff)
		ev.Cause = c.String()
		stage := uint8(e[1] >> 16)
		if r.stageNames != nil {
			ev.Stage = r.stageNames(stage)
		} else {
			ev.Stage = fmt.Sprintf("stage(%d)", stage)
		}
		ev.Node = r.name(uint32(e[2]))
		ev.PID = e[3]
		if e[5]&1 != 0 {
			src := netip.AddrFrom4(from32(uint32(e[4] >> 32)))
			dst := netip.AddrFrom4(from32(uint32(e[4])))
			ev.Flow = fmt.Sprintf("%s:%d>%s:%d/%d",
				src, uint16(e[5]>>48), dst, uint16(e[5]>>32), uint8(e[5]>>24))
		}
		ev.Cursor = int64(e[6])
		return ev
	}
	if n := uint32(e[2]); n != 0 {
		ev.Node = r.name(n)
	}
	if d := uint32(e[2] >> 32); d != 0 {
		ev.Detail = r.name(d)
	}
	ev.Count = e[4]
	return ev
}

func be32(b [4]byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func from32(v uint32) [4]byte {
	return [4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}
