package flightrec

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nfp/internal/telemetry"
)

// testSnapshotter builds a Snapshotter over a temp spool with a tiny
// rate-limit window, a recorder and a registry.
func testSnapshotter(t *testing.T, cfg SnapConfig) *Snapshotter {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := NewSnapshotter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

// TestSnapshotterWriteAndRead round-trips one bundle through the
// spool: schema, reason, ledger, events, sources, goroutines, build.
func TestSnapshotterWriteAndRead(t *testing.T) {
	rec := NewRecorder(Config{})
	rec.Event(Note{Kind: KindPanic, Node: rec.Intern("ids")})
	reg := telemetry.NewRegistry()
	reg.Counter(MetricDrops).Add(2)
	reg.Counter(MetricDrops, telemetry.L("cause", "panic"), telemetry.L("nf", "ids")).Add(2)
	s := testSnapshotter(t, SnapConfig{
		Recorder: rec, Registry: reg,
		Build:      map[string]string{"version": "test"},
		Goroutines: true,
		Sources: []Source{
			{Name: "config", Collect: func() any { return map[string]int{"gen": 3} }},
			{Name: "absent", Collect: func() any { return nil }},
		},
	})
	path, err := s.WriteBundle("panic:ids")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Schema != BundleSchema || b.Reason != "panic:ids" || b.TSNS == 0 {
		t.Fatalf("bundle header: %+v", b)
	}
	if b.Build["version"] != "test" {
		t.Fatalf("build info lost: %v", b.Build)
	}
	if b.Ledger.TotalDrops != 2 || b.Ledger.ByCause["panic"] != 2 {
		t.Fatalf("bundle ledger: %+v", b.Ledger)
	}
	if len(b.Events) != 1 || b.Events[0].Kind != "panic" {
		t.Fatalf("bundle events: %+v", b.Events)
	}
	var cfg map[string]int
	if err := json.Unmarshal(b.Sources["config"], &cfg); err != nil || cfg["gen"] != 3 {
		t.Fatalf("config source: %s (%v)", b.Sources["config"], err)
	}
	if _, ok := b.Sources["absent"]; ok {
		t.Fatal("nil-returning source must be omitted")
	}
	if !strings.Contains(b.Goroutines, "goroutine") {
		t.Fatal("goroutine dump missing")
	}
	if b.Metrics == nil || len(b.Metrics.Counters) == 0 {
		t.Fatal("metrics snapshot missing")
	}

	entries, err := ListSpool(s.Dir())
	if err != nil || len(entries) != 1 {
		t.Fatalf("spool list: %v, %v", entries, err)
	}
	e := entries[0]
	if e.File != filepath.Base(path) || e.Reason != "panic_ids" || e.TSNS != b.TSNS || e.Size == 0 {
		t.Fatalf("spool entry: %+v", e)
	}
}

// TestSnapshotterRateLimit: triggers inside the window are suppressed,
// not spooled; WriteBundle bypasses the limiter.
func TestSnapshotterRateLimit(t *testing.T) {
	s := testSnapshotter(t, SnapConfig{MinInterval: time.Hour})
	if !s.Trigger("first") {
		t.Fatal("first trigger must pass")
	}
	if s.Trigger("second") {
		t.Fatal("second trigger inside the window must be suppressed")
	}
	if _, err := s.WriteBundle("explicit"); err != nil {
		t.Fatal(err)
	}
	s.Stop() // flush the queued first trigger
	written, suppressed := s.Stats()
	if written != 2 || suppressed != 1 {
		t.Fatalf("written=%d suppressed=%d, want 2/1", written, suppressed)
	}
	entries, _ := ListSpool(s.Dir())
	if len(entries) != 2 {
		t.Fatalf("spool has %d bundles, want 2", len(entries))
	}
}

// TestSnapshotterPrune: the spool keeps only the newest MaxBundles.
func TestSnapshotterPrune(t *testing.T) {
	s := testSnapshotter(t, SnapConfig{MaxBundles: 3})
	reasons := []string{"a", "b", "c", "d", "e"}
	for _, r := range reasons {
		if _, err := s.WriteBundle(r); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond) // distinct spool timestamps
	}
	entries, err := ListSpool(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("spool has %d bundles after prune, want 3", len(entries))
	}
	for i, want := range []string{"c", "d", "e"} {
		if entries[i].Reason != want {
			t.Fatalf("prune kept %q at %d, want %q (newest must survive)", entries[i].Reason, i, want)
		}
	}
}

// TestSnapshotterNilSafe: nil receiver no-ops everywhere.
func TestSnapshotterNilSafe(t *testing.T) {
	var s *Snapshotter
	if s.Trigger("x") {
		t.Fatal("nil Trigger must be false")
	}
	if w, sup := s.Stats(); w != 0 || sup != 0 {
		t.Fatal("nil Stats must be zero")
	}
	if s.Dir() != "" {
		t.Fatal("nil Dir must be empty")
	}
	s.Stop()
}

// TestSnapshotterRequiresDir: no spool dir is a construction error,
// not a silent no-op.
func TestSnapshotterRequiresDir(t *testing.T) {
	if _, err := NewSnapshotter(SnapConfig{}); err == nil {
		t.Fatal("empty Dir must fail")
	}
}

// TestReadBundleErrors: missing file, malformed JSON, and a schema
// from the future all fail loudly.
func TestReadBundleErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadBundle(filepath.Join(dir, "nope.json")); err == nil {
		t.Fatal("missing bundle must fail")
	}
	trunc := filepath.Join(dir, "incident-1-x.json")
	if err := os.WriteFile(trunc, []byte(`{"schema":1,"reason":"x"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(trunc); err == nil || !strings.Contains(err.Error(), "incident-1-x.json") {
		t.Fatalf("truncated bundle: %v", err)
	}
	future := filepath.Join(dir, "incident-2-y.json")
	if err := os.WriteFile(future, []byte(`{"schema":99,"reason":"y"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(future); err == nil || !strings.Contains(err.Error(), "schema 99") {
		t.Fatalf("schema mismatch: %v", err)
	}
}

// TestListSpoolEdgeCases: a missing dir is an empty spool; foreign
// files are ignored; entries sort oldest first by timestamp.
func TestListSpoolEdgeCases(t *testing.T) {
	entries, err := ListSpool(filepath.Join(t.TempDir(), "missing"))
	if err != nil || entries != nil {
		t.Fatalf("missing dir: %v, %v", entries, err)
	}
	dir := t.TempDir()
	for _, name := range []string{"notes.txt", "incident-bad", "incident-20-b.json", "incident-10-a.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	entries, err = ListSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Reason != "a" || entries[1].Reason != "b" {
		t.Fatalf("spool listing: %+v", entries)
	}
}

// TestSanitizeReason: spool filenames stay shell-safe whatever the
// trigger reason contains.
func TestSanitizeReason(t *testing.T) {
	cases := map[string]string{
		"panic:ids":     "panic_ids",
		"health-> bad!": "health-__bad_",
		"":              "incident",
	}
	for in, want := range cases {
		if got := sanitizeReason(in); got != want {
			t.Fatalf("sanitizeReason(%q) = %q, want %q", in, got, want)
		}
	}
	if got := sanitizeReason(strings.Repeat("x", 100)); len(got) > 48 {
		t.Fatalf("sanitized reason too long: %d", len(got))
	}
}
