// Package flightrec is the dataplane's black box: drop provenance (a
// closed taxonomy of drop causes behind nfp_drops_total{cause,...}),
// an always-on per-shard lock-free event ring recording drops, panics,
// restarts, backpressure engagements, health transitions and reload
// lifecycle edges, and anomaly-triggered incident snapshots spooled to
// disk for post-mortem debugging. The conservation ledger (ledger.go)
// closes the loop: the sum over drop causes must equal total drops —
// no anonymous packet death anywhere in the dataplane.
package flightrec

import "fmt"

// Cause classifies why a packet died. The taxonomy is closed: every
// drop site in the dataplane must stamp one of the named causes, and
// CauseUnknown (the zero value) is a tripwire — the conservation
// ledger fails if any drop is ever accounted against it, so a future
// drop site that forgets to thread provenance fails the audit instead
// of silently vanishing into an anonymous count.
type Cause uint8

const (
	// CauseUnknown is the zero-value sentinel; it must never appear in
	// a live counter (the ledger audit asserts its series stays 0).
	CauseUnknown Cause = iota
	// CauseNFVerdict is an NF returning VerdictDrop for the packet.
	CauseNFVerdict
	// CausePanic is the in-flight burst discarded when an NF panics.
	CausePanic
	// CauseUnhealthyDrain is a packet drained from an unhealthy NF's
	// ring while the supervisor waits to restart it.
	CauseUnhealthyDrain
	// CauseShedPriority is the shed-lowest-priority backpressure
	// policy discarding a packet on ring exhaustion.
	CauseShedPriority
	// CauseDropTail is the drop-tail backpressure policy discarding a
	// packet on a full ring.
	CauseDropTail
	// CauseUnroutable is a sharded ingress packet no classifier rule
	// routes (accounted on nfp_ingress_unroutable_total, never
	// injected, and excluded from the terminal conservation sum).
	CauseUnroutable
	// CauseReloadDrain is a packet drained from a sealed (superseded)
	// generation's rings after a config swap.
	CauseReloadDrain
	// CauseStopDrain is reserved for packets drained at Stop. Stop
	// waits for conservation before tearing runtimes down, so this
	// series is structurally zero today; the taxonomy keeps the name
	// so a future early-stop path has a home (and a test pins it 0).
	CauseStopDrain

	// NumCauses sizes dense per-cause tables.
	NumCauses = int(CauseStopDrain) + 1
)

var causeNames = [NumCauses]string{
	"unknown",
	"nf_verdict",
	"panic",
	"unhealthy_drain",
	"shed_priority",
	"drop_tail",
	"unroutable",
	"reload_drain",
	"stop_drain",
}

func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// Causes lists every named cause (including the unknown sentinel) in
// taxonomy order.
func Causes() []Cause {
	out := make([]Cause, NumCauses)
	for i := range out {
		out[i] = Cause(i)
	}
	return out
}

// TerminalCauses lists the causes that account packets which were
// injected and later died inside the graph — i.e. everything except
// the unknown sentinel and unroutable (which is rejected at ingress,
// before injection counts it).
func TerminalCauses() []Cause {
	var out []Cause
	for _, c := range Causes() {
		if c != CauseUnknown && c != CauseUnroutable {
			out = append(out, c)
		}
	}
	return out
}

// ParseCause maps a taxonomy name back to its Cause; ok is false for
// names outside the closed set.
func ParseCause(s string) (Cause, bool) {
	for i, n := range causeNames {
		if n == s {
			return Cause(i), true
		}
	}
	return CauseUnknown, false
}
