package flightrec

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"nfp/internal/telemetry"
)

// Status is the live /debug/flightrecorder report: drop ledger, the
// event-ring tail, and the incident spool index.
type Status struct {
	SpoolDir   string            `json:"spool_dir,omitempty"`
	Written    uint64            `json:"bundles_written"`
	Suppressed uint64            `json:"bundles_suppressed"`
	Ledger     Ledger            `json:"ledger"`
	LedgerOK   bool              `json:"ledger_ok"`
	LedgerErr  string            `json:"ledger_error,omitempty"`
	Events     []Event           `json:"events"`
	Incidents  []SpoolEntry      `json:"incidents"`
	Build      map[string]string `json:"build,omitempty"`
}

// Handler serves the flight recorder at one endpoint:
//
//	GET /debug/flightrecorder           — Status JSON
//	GET /debug/flightrecorder?n=128     — cap the event tail
//	GET /debug/flightrecorder?incident=F — serve spooled bundle F
//
// Any of rec, reg, sn may be nil; the report simply omits those
// sections.
func Handler(rec *Recorder, reg *telemetry.Registry, sn *Snapshotter, build map[string]string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f := r.URL.Query().Get("incident"); f != "" {
			serveIncident(w, sn.Dir(), f)
			return
		}
		n := 64
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v >= 0 {
				n = v
			}
		}
		st := Status{
			SpoolDir: sn.Dir(),
			Events:   rec.Events(n),
			Build:    build,
		}
		st.Written, st.Suppressed = sn.Stats()
		if reg != nil {
			st.Ledger = ReadLedger(reg.Snapshot())
			if err := st.Ledger.Verify(); err != nil {
				st.LedgerErr = err.Error()
			} else {
				st.LedgerOK = true
			}
		}
		if dir := sn.Dir(); dir != "" {
			st.Incidents, _ = ListSpool(dir)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(st)
	})
}

// serveIncident streams one spooled bundle. The name is restricted to
// a bare incident-*.json basename so the spool dir can't be escaped.
func serveIncident(w http.ResponseWriter, dir, name string) {
	if dir == "" {
		http.Error(w, "no incident spool configured", http.StatusNotFound)
		return
	}
	if name != filepath.Base(name) || filepath.Ext(name) != ".json" ||
		len(name) < len("incident-") || name[:len("incident-")] != "incident-" {
		http.Error(w, "invalid incident name", http.StatusBadRequest)
		return
	}
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		http.Error(w, "incident not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}
