package flightrec

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nfp/internal/telemetry"
)

// BundleSchema versions the incident bundle JSON; bump on breaking
// shape changes so spooled bundles stay parseable.
const BundleSchema = 1

// Source is one named data collector contributing a section to every
// incident bundle (config info, health report, top flows, critical
// path, ...). Collect runs on the snapshotter's writer goroutine.
type Source struct {
	Name    string
	Collect func() any
}

// SnapConfig wires a Snapshotter.
type SnapConfig struct {
	// Dir is the spool directory (created if missing).
	Dir string
	// MinInterval rate-limits bundle writes: triggers inside the
	// window are counted as suppressed, not spooled (default 30s).
	MinInterval time.Duration
	// MaxBundles caps the spool; the oldest bundles are pruned
	// (default 16).
	MaxBundles int
	// EventTail caps the per-shard event-ring tail captured into a
	// bundle (default 256).
	EventTail int
	// Recorder supplies the event-ring tail (may be nil).
	Recorder *Recorder
	// Registry supplies the metric snapshot and drop ledger (may be
	// nil).
	Registry *telemetry.Registry
	// Sources contribute extra named sections.
	Sources []Source
	// Goroutines includes a goroutine stack dump in each bundle.
	Goroutines bool
	// Build self-describes the process (version, go, shards, ...).
	Build map[string]string
}

// Bundle is one self-contained incident snapshot.
type Bundle struct {
	Schema     int                        `json:"schema"`
	Reason     string                     `json:"reason"`
	TSNS       int64                      `json:"ts_ns"`
	Build      map[string]string          `json:"build,omitempty"`
	Ledger     Ledger                     `json:"ledger"`
	Events     []Event                    `json:"events"`
	Metrics    *telemetry.Snapshot        `json:"metrics,omitempty"`
	Sources    map[string]json.RawMessage `json:"sources,omitempty"`
	Goroutines string                     `json:"goroutines,omitempty"`
}

// Snapshotter spools anomaly-triggered incident bundles. Trigger is
// safe from dataplane goroutines: it does a clock check and a
// non-blocking channel send; the bundle itself is collected and
// written on a background goroutine.
type Snapshotter struct {
	cfg        SnapConfig
	lastNS     atomic.Int64
	written    atomic.Uint64
	suppressed atomic.Uint64
	trig       chan string
	done       chan struct{}
	stop       sync.Once
}

// NewSnapshotter creates the spool dir and starts the writer
// goroutine.
func NewSnapshotter(cfg SnapConfig) (*Snapshotter, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("flightrec: snapshot spool dir required")
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = 30 * time.Second
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 16
	}
	if cfg.EventTail <= 0 {
		cfg.EventTail = 256
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("flightrec: spool dir: %w", err)
	}
	s := &Snapshotter{
		cfg:  cfg,
		trig: make(chan string, 4),
		done: make(chan struct{}),
	}
	go s.run()
	return s, nil
}

// Trigger requests an incident bundle. Returns false when the
// rate-limit window suppressed it (or the writer queue is full). Fast
// and non-blocking; safe on a nil receiver.
func (s *Snapshotter) Trigger(reason string) bool {
	if s == nil {
		return false
	}
	now := time.Now().UnixNano()
	last := s.lastNS.Load()
	if now-last < int64(s.cfg.MinInterval) || !s.lastNS.CompareAndSwap(last, now) {
		s.suppressed.Add(1)
		return false
	}
	select {
	case s.trig <- reason:
		return true
	default:
		s.suppressed.Add(1)
		return false
	}
}

// Stats reports bundles written and triggers suppressed. Safe on nil.
func (s *Snapshotter) Stats() (written, suppressed uint64) {
	if s == nil {
		return 0, 0
	}
	return s.written.Load(), s.suppressed.Load()
}

// Dir returns the spool directory ("" on nil).
func (s *Snapshotter) Dir() string {
	if s == nil {
		return ""
	}
	return s.cfg.Dir
}

// Stop flushes pending triggers and stops the writer. Safe on nil.
func (s *Snapshotter) Stop() {
	if s == nil {
		return
	}
	s.stop.Do(func() { close(s.trig) })
	<-s.done
}

func (s *Snapshotter) run() {
	defer close(s.done)
	for reason := range s.trig {
		if _, err := s.WriteBundle(reason); err != nil {
			fmt.Fprintf(os.Stderr, "flightrec: incident bundle: %v\n", err)
		}
	}
}

// WriteBundle collects and spools one bundle immediately, bypassing
// the rate limit (tests and explicit operator dumps; Trigger is the
// rate-limited path). Returns the bundle file path.
func (s *Snapshotter) WriteBundle(reason string) (string, error) {
	b := s.collect(reason)
	name := fmt.Sprintf("incident-%d-%s.json", b.TSNS, sanitizeReason(reason))
	path := filepath.Join(s.cfg.Dir, name)
	data, err := json.MarshalIndent(b, "", " ")
	if err != nil {
		return "", err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", err
	}
	s.written.Add(1)
	s.prune()
	return path, nil
}

func (s *Snapshotter) collect(reason string) Bundle {
	b := Bundle{
		Schema: BundleSchema,
		Reason: reason,
		TSNS:   time.Now().UnixNano(),
		Build:  s.cfg.Build,
		Events: s.cfg.Recorder.Events(s.cfg.EventTail),
	}
	if s.cfg.Registry != nil {
		snap := s.cfg.Registry.Snapshot()
		snap.Sort()
		b.Ledger = ReadLedger(snap)
		b.Metrics = &snap
	}
	for _, src := range s.cfg.Sources {
		v := src.Collect()
		if v == nil {
			continue
		}
		data, err := json.Marshal(v)
		if err != nil {
			data, _ = json.Marshal(fmt.Sprintf("collect error: %v", err))
		}
		if b.Sources == nil {
			b.Sources = make(map[string]json.RawMessage)
		}
		b.Sources[src.Name] = data
	}
	if s.cfg.Goroutines {
		buf := make([]byte, 1<<20)
		b.Goroutines = string(buf[:runtime.Stack(buf, true)])
	}
	return b
}

// prune keeps the newest MaxBundles bundles in the spool.
func (s *Snapshotter) prune() {
	entries, err := ListSpool(s.cfg.Dir)
	if err != nil || len(entries) <= s.cfg.MaxBundles {
		return
	}
	for _, e := range entries[:len(entries)-s.cfg.MaxBundles] {
		os.Remove(filepath.Join(s.cfg.Dir, e.File))
	}
}

func sanitizeReason(reason string) string {
	var b strings.Builder
	for _, r := range reason {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
		if b.Len() >= 48 {
			break
		}
	}
	if b.Len() == 0 {
		return "incident"
	}
	return b.String()
}

// SpoolEntry is one spooled bundle, parsed from its filename.
type SpoolEntry struct {
	File   string `json:"file"`
	Reason string `json:"reason"`
	TSNS   int64  `json:"ts_ns"`
	Size   int64  `json:"size"`
}

// ListSpool enumerates incident bundles in dir, oldest first. A
// missing dir is an empty spool, not an error.
func ListSpool(dir string) ([]SpoolEntry, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []SpoolEntry
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, "incident-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		rest := strings.TrimSuffix(strings.TrimPrefix(name, "incident-"), ".json")
		ts, reason := int64(0), rest
		if i := strings.IndexByte(rest, '-'); i > 0 {
			if v, err := strconv.ParseInt(rest[:i], 10, 64); err == nil {
				ts, reason = v, rest[i+1:]
			}
		}
		var size int64
		if info, err := de.Info(); err == nil {
			size = info.Size()
		}
		out = append(out, SpoolEntry{File: name, Reason: reason, TSNS: ts, Size: size})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TSNS != out[j].TSNS {
			return out[i].TSNS < out[j].TSNS
		}
		return out[i].File < out[j].File
	})
	return out, nil
}

// ReadBundle loads and validates one spooled bundle.
func ReadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("flightrec: bundle %s: %w", filepath.Base(path), err)
	}
	if b.Schema != BundleSchema {
		return nil, fmt.Errorf("flightrec: bundle %s: schema %d, want %d",
			filepath.Base(path), b.Schema, BundleSchema)
	}
	return &b, nil
}
