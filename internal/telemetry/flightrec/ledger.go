package flightrec

import (
	"fmt"
	"sort"
	"strings"

	"nfp/internal/telemetry"
)

// Metric names the ledger reconciles. MetricDrops doubles as both the
// unlabeled grand-total counter (registered by the server) and the
// per-cause family (cause/nf/shard/gen labels) — the registry keys
// series by name+labels, so they coexist.
const (
	MetricDrops      = "nfp_drops_total"
	MetricUnroutable = "nfp_ingress_unroutable_total"
)

// Ledger is the conservation audit view of a registry snapshot: every
// drop the dataplane counted, broken down by cause, against the
// unlabeled totals.
type Ledger struct {
	// ByCause sums the cause-labeled nfp_drops_total family per cause
	// name (across nf/shard/gen).
	ByCause map[string]uint64 `json:"by_cause"`
	// Terminal is the sum over terminal causes (everything except
	// unroutable) — packets that were injected and died inside.
	Terminal uint64 `json:"terminal"`
	// TotalDrops is the unlabeled nfp_drops_total counter.
	TotalDrops uint64 `json:"total_drops"`
	// Unroutable is the cause=unroutable series sum.
	Unroutable uint64 `json:"unroutable"`
	// UnroutableTotal is nfp_ingress_unroutable_total.
	UnroutableTotal uint64 `json:"unroutable_total"`
}

// ReadLedger extracts the drop ledger from a registry snapshot.
func ReadLedger(snap telemetry.Snapshot) Ledger {
	l := Ledger{ByCause: make(map[string]uint64)}
	for _, c := range snap.Counters {
		switch c.Name {
		case MetricDrops:
			cause, ok := c.Labels["cause"]
			if !ok {
				l.TotalDrops += c.Value
				continue
			}
			l.ByCause[cause] += c.Value
			if cause == CauseUnroutable.String() {
				l.Unroutable += c.Value
			} else {
				l.Terminal += c.Value
			}
		case MetricUnroutable:
			l.UnroutableTotal += c.Value
		}
	}
	return l
}

// Verify enforces the conservation audit: no anonymous packet death.
//   - the unknown sentinel cause never fired (every drop site stamps
//     a real cause),
//   - every cause name is inside the closed taxonomy,
//   - the sum over terminal causes equals the unlabeled drop total,
//   - the unroutable cause series equals the ingress unroutable total.
func (l Ledger) Verify() error {
	var errs []string
	if n := l.ByCause[CauseUnknown.String()]; n != 0 {
		errs = append(errs, fmt.Sprintf("%d drops with unknown cause (unthreaded drop site)", n))
	}
	for cause := range l.ByCause {
		if _, ok := ParseCause(cause); !ok {
			errs = append(errs, fmt.Sprintf("cause %q outside the closed taxonomy", cause))
		}
	}
	if l.Terminal != l.TotalDrops {
		errs = append(errs, fmt.Sprintf("sum over terminal causes %d != total drops %d (diff %+d): %s",
			l.Terminal, l.TotalDrops, int64(l.Terminal)-int64(l.TotalDrops), l.causeList()))
	}
	if l.Unroutable != l.UnroutableTotal {
		errs = append(errs, fmt.Sprintf("cause=unroutable %d != %s %d",
			l.Unroutable, MetricUnroutable, l.UnroutableTotal))
	}
	if errs != nil {
		return fmt.Errorf("flightrec ledger: %s", strings.Join(errs, "; "))
	}
	return nil
}

// causeList renders the by-cause breakdown deterministically for
// error messages and bundles.
func (l Ledger) causeList() string {
	keys := make([]string, 0, len(l.ByCause))
	for k := range l.ByCause {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, l.ByCause[k]))
	}
	if len(parts) == 0 {
		return "(no cause series)"
	}
	return strings.Join(parts, " ")
}
