package flightrec

import (
	"strings"
	"testing"

	"nfp/internal/telemetry"
)

// ctr builds one counter series for hand-assembled snapshots.
func ctr(name string, value uint64, labels map[string]string) telemetry.CounterSnap {
	return telemetry.CounterSnap{Name: name, Labels: labels, Value: value}
}

func causeLabels(cause string) map[string]string {
	return map[string]string{"cause": cause, "nf": "monitor", "shard": "0", "gen": "1"}
}

// TestLedgerClean: a balanced snapshot — per-cause sum equals the
// unlabeled total, unroutable matches the ingress counter — verifies.
func TestLedgerClean(t *testing.T) {
	snap := telemetry.Snapshot{Counters: []telemetry.CounterSnap{
		ctr(MetricDrops, 5, nil), // unlabeled grand total
		ctr(MetricDrops, 3, causeLabels("panic")),
		ctr(MetricDrops, 2, causeLabels("nf_verdict")),
		ctr(MetricDrops, 4, causeLabels("unroutable")),
		ctr(MetricUnroutable, 4, nil),
	}}
	l := ReadLedger(snap)
	if l.Terminal != 5 || l.TotalDrops != 5 || l.Unroutable != 4 || l.UnroutableTotal != 4 {
		t.Fatalf("ledger = %+v", l)
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("clean ledger failed verify: %v", err)
	}
}

// TestLedgerUnknownTripwire: any count on the unknown sentinel fails
// the audit — an unthreaded drop site must not pass.
func TestLedgerUnknownTripwire(t *testing.T) {
	snap := telemetry.Snapshot{Counters: []telemetry.CounterSnap{
		ctr(MetricDrops, 1, nil),
		ctr(MetricDrops, 1, causeLabels("unknown")),
	}}
	err := ReadLedger(snap).Verify()
	if err == nil || !strings.Contains(err.Error(), "unknown cause") {
		t.Fatalf("unknown sentinel not caught: %v", err)
	}
}

// TestLedgerSumMismatch: a cause sum diverging from the unlabeled
// total is anonymous packet death and must fail.
func TestLedgerSumMismatch(t *testing.T) {
	snap := telemetry.Snapshot{Counters: []telemetry.CounterSnap{
		ctr(MetricDrops, 10, nil),
		ctr(MetricDrops, 7, causeLabels("panic")),
	}}
	err := ReadLedger(snap).Verify()
	if err == nil || !strings.Contains(err.Error(), "7 != total drops 10") {
		t.Fatalf("sum mismatch not caught: %v", err)
	}
	// The error carries the breakdown for debugging.
	if !strings.Contains(err.Error(), "panic=7") {
		t.Fatalf("error lacks cause breakdown: %v", err)
	}
}

// TestLedgerUnroutableMismatch: the cause=unroutable series must track
// the legacy ingress counter exactly.
func TestLedgerUnroutableMismatch(t *testing.T) {
	snap := telemetry.Snapshot{Counters: []telemetry.CounterSnap{
		ctr(MetricDrops, 3, causeLabels("unroutable")),
		ctr(MetricUnroutable, 5, nil),
	}}
	err := ReadLedger(snap).Verify()
	if err == nil || !strings.Contains(err.Error(), "unroutable") {
		t.Fatalf("unroutable mismatch not caught: %v", err)
	}
}

// TestLedgerForeignCause: a cause label outside the closed taxonomy
// fails — the set is closed by design.
func TestLedgerForeignCause(t *testing.T) {
	snap := telemetry.Snapshot{Counters: []telemetry.CounterSnap{
		ctr(MetricDrops, 1, nil),
		ctr(MetricDrops, 1, causeLabels("cosmic_ray")),
	}}
	err := ReadLedger(snap).Verify()
	if err == nil || !strings.Contains(err.Error(), "outside the closed taxonomy") {
		t.Fatalf("foreign cause not caught: %v", err)
	}
}

// TestLedgerEmpty: a fresh registry (no drops anywhere) is balanced.
func TestLedgerEmpty(t *testing.T) {
	if err := ReadLedger(telemetry.Snapshot{}).Verify(); err != nil {
		t.Fatalf("empty ledger failed verify: %v", err)
	}
}

// TestCauseTaxonomy pins the closed set: names round-trip through
// ParseCause, foreign names are rejected, and the terminal causes are
// exactly everything but unknown/unroutable.
func TestCauseTaxonomy(t *testing.T) {
	for _, c := range Causes() {
		got, ok := ParseCause(c.String())
		if !ok || got != c {
			t.Fatalf("ParseCause(%q) = %v,%v", c.String(), got, ok)
		}
	}
	if _, ok := ParseCause("bogus"); ok {
		t.Fatal("ParseCause accepted a foreign name")
	}
	term := TerminalCauses()
	if len(term) != NumCauses-2 {
		t.Fatalf("TerminalCauses() has %d entries, want %d", len(term), NumCauses-2)
	}
	for _, c := range term {
		if c == CauseUnknown || c == CauseUnroutable {
			t.Fatalf("%v must not be terminal", c)
		}
	}
}
