package flightrec

import (
	"runtime"
	"sync/atomic"
)

// eventWords is the fixed payload size of one packed event. With the
// sequence word a slot is exactly 64 bytes — one cache line.
const eventWords = 7

type rawEvent [eventWords]uint64

// slot is one ring entry protected by a per-slot seqlock. Every word
// is atomic, so concurrent writers and snapshot readers are race-free
// by construction (no torn reads are possible, and stale slots are
// detected and discarded by the sequence check).
type slot struct {
	// seq encodes the slot's lap state: 2t   = ticket t may write,
	// 2t+1 = ticket t mid-write, 2(t+N) = ticket t published (and
	// ticket t+N may overwrite). Initialized to 2i for slot i.
	seq atomic.Uint64
	w   [eventWords]atomic.Uint64
}

// ring is a fixed-size multi-producer event ring. Writers claim a
// global ticket, spin (effectively never — a collision needs a full
// lap of concurrent writers) for their slot, and publish via the
// slot's sequence word. Readers snapshot without blocking writers.
type ring struct {
	mask  uint64
	head  atomic.Uint64
	slots []slot
}

func newRing(size int) *ring {
	n := 1
	for n < size {
		n <<= 1
	}
	r := &ring{mask: uint64(n - 1), slots: make([]slot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i) << 1)
	}
	return r
}

// record appends one event, overwriting the oldest once full. Lock-
// free and allocation-free: one atomic ticket, eventWords+2 atomic
// stores.
func (r *ring) record(e rawEvent) {
	t := r.head.Add(1) - 1
	s := &r.slots[t&r.mask]
	// Serialize full-lap collisions: ticket t may write only after
	// ticket t-N published (seq == 2t).
	for s.seq.Load() != t<<1 {
		runtime.Gosched()
	}
	s.seq.Store(t<<1 | 1)
	for i := range e {
		s.w[i].Store(e[i])
	}
	s.seq.Store((t + uint64(len(r.slots))) << 1)
}

// snapshot copies up to max of the newest fully-published events in
// ticket order (oldest first). Events overwritten mid-copy are
// detected via the sequence word and skipped. max <= 0 means the
// whole retained window.
func (r *ring) snapshot(max int) []rawEvent {
	h := r.head.Load()
	n := uint64(len(r.slots))
	lo := uint64(0)
	if h > n {
		lo = h - n
	}
	if max > 0 && h-lo > uint64(max) {
		lo = h - uint64(max)
	}
	out := make([]rawEvent, 0, h-lo)
	for t := lo; t < h; t++ {
		s := &r.slots[t&r.mask]
		want := (t + n) << 1
		if s.seq.Load() != want {
			continue // still being written, or already overwritten
		}
		var e rawEvent
		for i := range e {
			e[i] = s.w[i].Load()
		}
		if s.seq.Load() != want {
			continue // overwritten while copying
		}
		out = append(out, e)
	}
	return out
}
