package telemetry

import (
	"fmt"
	"regexp"
)

var (
	lintName  = regexp.MustCompile(`^nfp_[a-z0-9_]+$`)
	lintLabel = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
)

// LintNames checks a snapshot against the repo's metric-name
// conventions and returns one finding per violation (empty = clean):
//
//   - every series name matches ^nfp_[a-z0-9_]+(_total)?$,
//   - counters end in _total; gauges and histograms do not,
//   - label keys are lower_snake_case identifiers,
//   - no two series share the same name+labels (duplicate
//     registration; impossible from one Registry, but snapshots can
//     be merged or hand-built).
//
// A test in every metric-producing package can assert len == 0, so a
// misnamed series fails the build instead of shipping.
func LintNames(s Snapshot) []string {
	var findings []string
	seen := make(map[string]bool)
	check := func(kind, name string, labels map[string]string, wantTotal bool) {
		if !lintName.MatchString(name) {
			findings = append(findings, fmt.Sprintf("%s %s: name must match ^nfp_[a-z0-9_]+$", kind, name))
		}
		hasTotal := len(name) > len("_total") && name[len(name)-len("_total"):] == "_total"
		if wantTotal && !hasTotal {
			findings = append(findings, fmt.Sprintf("%s %s: counter names must end in _total", kind, name))
		}
		if !wantTotal && hasTotal {
			findings = append(findings, fmt.Sprintf("%s %s: only counters may end in _total", kind, name))
		}
		for k := range labels {
			if !lintLabel.MatchString(k) {
				findings = append(findings, fmt.Sprintf("%s %s: label key %q must be lower_snake_case", kind, name, k))
			}
		}
		key := kind + "\x00" + seriesKey(name, labels)
		if seen[key] {
			findings = append(findings, fmt.Sprintf("%s %s: duplicate series %s", kind, name, seriesKey(name, labels)))
		}
		seen[key] = true
	}
	for _, c := range s.Counters {
		check("counter", c.Name, c.Labels, true)
	}
	for _, g := range s.Gauges {
		check("gauge", g.Name, g.Labels, false)
	}
	for _, h := range s.Histograms {
		check("histogram", h.Name, h.Labels, false)
	}
	return findings
}
