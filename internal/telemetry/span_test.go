package telemetry

import "testing"

// seqSpans numbers a synthetic span list so it looks like tracer
// output (seq-sorted, seq assigned in record order).
func seqSpans(spans []TraceEvent) []TraceEvent {
	for i := range spans {
		spans[i].Seq = uint64(i + 1)
	}
	return spans
}

// TestDecomposeSequentialChain checks exact attribution on a plain
// sequential chain: the buckets telescope to the e2e latency.
func TestDecomposeSequentialChain(t *testing.T) {
	spans := seqSpans([]TraceEvent{
		{PID: 9, MID: 1, Ver: 1, Stage: StageClassify, Begin: 100, TS: 110},
		{PID: 9, MID: 1, Ver: 1, Stage: StageRingWait, Begin: 110, TS: 150},
		{PID: 9, MID: 1, Ver: 1, Stage: StageNF, Name: "ids", Begin: 150, TS: 250},
		{PID: 9, MID: 1, Ver: 1, Stage: StageRingWait, Begin: 250, TS: 260},
		{PID: 9, MID: 1, Ver: 1, Stage: StageNF, Name: "lb", Begin: 260, TS: 460},
		{PID: 9, MID: 1, Ver: 1, Stage: StageOutput, Begin: 460, TS: 465},
	})
	at, ok := Decompose(spans)
	if !ok {
		t.Fatal("complete chain did not decompose")
	}
	if at.PID != 9 || at.MID != 1 {
		t.Errorf("identity = pid %d mid %d", at.PID, at.MID)
	}
	if at.E2E != 365 {
		t.Errorf("e2e = %d, want 365", at.E2E)
	}
	if at.Classify != 10 || at.RingWait != 50 || at.Service != 300 || at.Output != 5 {
		t.Errorf("buckets = %+v", at)
	}
	if sum := at.Classify + at.RingWait + at.Service + at.MergeWait + at.Merge + at.Output; sum != at.E2E {
		t.Errorf("buckets sum %d != e2e %d", sum, at.E2E)
	}
	if at.Spans != len(spans) {
		t.Errorf("consumed %d spans, want %d", at.Spans, len(spans))
	}
}

// parallelSpans is a two-branch parallel micrograph: the base chain
// (v1) runs one NF while a copied branch (v2) runs a slower NF; they
// rejoin at merge-wait/merge and output. NF durations: v1=100, v2=200.
func parallelSpans() []TraceEvent {
	return seqSpans([]TraceEvent{
		{PID: 4, MID: 2, Ver: 1, Stage: StageClassify, Begin: 1000, TS: 1010},
		{PID: 4, MID: 2, Ver: 2, Stage: StageCopy, SrcVer: 1, Begin: 1010, TS: 1020},
		{PID: 4, MID: 2, Ver: 1, Stage: StageRingWait, Begin: 1010, TS: 1030},
		{PID: 4, MID: 2, Ver: 2, Stage: StageRingWait, Begin: 1020, TS: 1040},
		{PID: 4, MID: 2, Ver: 1, Stage: StageNF, Name: "fast", Begin: 1030, TS: 1130},
		{PID: 4, MID: 2, Ver: 2, Stage: StageNF, Name: "slow", Begin: 1040, TS: 1240},
		// Both tails wait for the join; finalize at 1250.
		{PID: 4, MID: 2, Ver: 1, Stage: StageMergeWait, Join: 1, Begin: 1130, TS: 1250},
		{PID: 4, MID: 2, Ver: 2, Stage: StageMergeWait, Join: 1, Begin: 1240, TS: 1250},
		{PID: 4, MID: 2, Ver: 1, Stage: StageMerge, Join: 1, Begin: 1250, TS: 1260},
		{PID: 4, MID: 2, Ver: 1, Stage: StageOutput, Begin: 1260, TS: 1265},
	})
}

// TestDecomposeParallelBranches checks the base chain alone tiles the
// e2e interval: branch spans describe concurrency, not extra latency.
func TestDecomposeParallelBranches(t *testing.T) {
	at, ok := Decompose(parallelSpans())
	if !ok {
		t.Fatal("parallel chain did not decompose")
	}
	if at.E2E != 265 {
		t.Errorf("e2e = %d, want 265", at.E2E)
	}
	// Base chain only: classify 10, ring-wait 20, nf 100, merge-wait
	// 120, merge 10, output 5.
	if at.Classify != 10 || at.RingWait != 20 || at.Service != 100 ||
		at.MergeWait != 120 || at.Merge != 10 || at.Output != 5 {
		t.Errorf("buckets = %+v", at)
	}
	if sum := at.Classify + at.RingWait + at.Service + at.MergeWait + at.Merge + at.Output; sum != at.E2E {
		t.Errorf("buckets sum %d != e2e %d", sum, at.E2E)
	}
}

// TestDecomposeBrokenChain checks incomplete spans report not-ok
// instead of a wrong attribution.
func TestDecomposeBrokenChain(t *testing.T) {
	if _, ok := Decompose(nil); ok {
		t.Error("empty span set decomposed")
	}
	// Head is not classify.
	if _, ok := Decompose(seqSpans([]TraceEvent{
		{PID: 1, Ver: 1, Stage: StageNF, Begin: 10, TS: 20},
	})); ok {
		t.Error("headless chain decomposed")
	}
	// Gap: NF begins after the classify cursor.
	if _, ok := Decompose(seqSpans([]TraceEvent{
		{PID: 1, Ver: 1, Stage: StageClassify, Begin: 10, TS: 20},
		{PID: 1, Ver: 1, Stage: StageNF, Begin: 25, TS: 40},
		{PID: 1, Ver: 1, Stage: StageOutput, Begin: 40, TS: 45},
	})); ok {
		t.Error("gapped chain decomposed")
	}
	// No terminal span (packet still in flight).
	if _, ok := Decompose(seqSpans([]TraceEvent{
		{PID: 1, Ver: 1, Stage: StageClassify, Begin: 10, TS: 20},
		{PID: 1, Ver: 1, Stage: StageNF, Begin: 20, TS: 40},
	})); ok {
		t.Error("unterminated chain decomposed")
	}
}

// TestCriticalPathParallel checks the DP on the parallel micrograph:
// the critical path takes the slow branch's service time, the
// sequential sum takes both.
func TestCriticalPathParallel(t *testing.T) {
	cp, ok := AnalyzeCriticalPath(parallelSpans())
	if !ok {
		t.Fatal("parallel chain did not analyze")
	}
	if cp.SeqNS != 300 {
		t.Errorf("seq = %d, want 300 (100+200)", cp.SeqNS)
	}
	if cp.CriticalNS != 200 {
		t.Errorf("critical = %d, want 200 (slow branch)", cp.CriticalNS)
	}
	if cp.CriticalNS > cp.SeqNS {
		t.Errorf("critical %d > seq %d", cp.CriticalNS, cp.SeqNS)
	}
	if cp.E2E != 265 {
		t.Errorf("e2e = %d, want 265", cp.E2E)
	}
}

// TestCriticalPathSequentialEqualsSeq checks a chain with no
// parallelism has critical == seq (speedup exactly 1).
func TestCriticalPathSequentialEqualsSeq(t *testing.T) {
	spans := seqSpans([]TraceEvent{
		{PID: 9, MID: 1, Ver: 1, Stage: StageClassify, Begin: 100, TS: 110},
		{PID: 9, MID: 1, Ver: 1, Stage: StageRingWait, Begin: 110, TS: 150},
		{PID: 9, MID: 1, Ver: 1, Stage: StageNF, Name: "a", Begin: 150, TS: 250},
		{PID: 9, MID: 1, Ver: 1, Stage: StageRingWait, Begin: 250, TS: 260},
		{PID: 9, MID: 1, Ver: 1, Stage: StageNF, Name: "b", Begin: 260, TS: 460},
		{PID: 9, MID: 1, Ver: 1, Stage: StageOutput, Begin: 460, TS: 465},
	})
	cp, ok := AnalyzeCriticalPath(spans)
	if !ok {
		t.Fatal("sequential chain did not analyze")
	}
	if cp.CriticalNS != 300 || cp.SeqNS != 300 {
		t.Errorf("critical/seq = %d/%d, want 300/300", cp.CriticalNS, cp.SeqNS)
	}
}

// TestBuildCriticalPathReport checks aggregation: packet counts,
// truncation accounting, the aggregate speedup ratio, and bucket sums.
func TestBuildCriticalPathReport(t *testing.T) {
	var events []TraceEvent
	events = append(events, parallelSpans()...)
	// A truncated group: lone NF span for another pid.
	events = append(events, TraceEvent{Seq: 100, PID: 77, MID: 2, Ver: 1, Stage: StageNF, Begin: 5, TS: 6})
	rep := BuildCriticalPathReport(events)
	if rep.Packets != 1 || rep.Truncated != 1 || rep.Unparsed != 0 {
		t.Fatalf("packets/truncated/unparsed = %d/%d/%d, want 1/1/0",
			rep.Packets, rep.Truncated, rep.Unparsed)
	}
	mc := rep.ByMID[2]
	if mc == nil {
		t.Fatal("mid 2 missing from report")
	}
	if mc.Packets != 1 {
		t.Errorf("mid 2 packets = %d", mc.Packets)
	}
	if want := 1.5; mc.Speedup != want {
		t.Errorf("speedup = %v, want %v (300/200)", mc.Speedup, want)
	}
	if mc.Service != 100 || mc.MergeWait != 120 {
		t.Errorf("bucket sums: service %d merge-wait %d", mc.Service, mc.MergeWait)
	}
	if mc.E2E != 265 {
		t.Errorf("e2e sum = %d", mc.E2E)
	}
}
