package telemetry

// Span analysis: decomposing one sampled packet's end-to-end latency
// into stage durations and computing its critical path through the
// parallel service graph.
//
// The dataplane threads a "cursor" (the end timestamp of the previous
// span) along every packet chain, so the spans of one version chain
// tile contiguously: each span begins exactly where its predecessor
// ended. Decompose exploits that tiling to attribute e2e latency
// EXACTLY — the stage buckets sum to the measured end-to-end latency
// with no gaps or double counting, because they are one telescoping
// sum over adjacent timestamps.

// Attribution is one packet's end-to-end latency broken down by stage.
// When OK, Classify+RingWait+Service+MergeWait+Merge+Output == E2E.
type Attribution struct {
	PID uint64 `json:"pid"`
	MID uint32 `json:"mid"`
	// E2E is the packet's end-to-end latency in nanoseconds, from the
	// classify span's begin (source ingress when stamped) to the
	// output/drop span's end.
	E2E int64 `json:"e2e_ns"`
	// Stage buckets, nanoseconds.
	Classify  int64 `json:"classify_ns"`
	RingWait  int64 `json:"ring_wait_ns"`
	Service   int64 `json:"service_ns"`
	MergeWait int64 `json:"merge_wait_ns"`
	Merge     int64 `json:"merge_ns"`
	Output    int64 `json:"output_ns"`
	// Spans is how many spans the walked chain consumed.
	Spans int `json:"spans"`
}

// Decompose walks one packet's spans (as returned per PID by
// GroupEvents) along its base version chain and attributes the
// end-to-end latency to stages. It reports ok=false when the chain is
// incomplete (evicted spans, packet still in flight) or does not tile.
//
// Parallel branches: copies run on their own version chains and
// rejoin the base chain through the merge span, so the base chain
// alone tiles the full [classify, output] interval — branch spans
// overlap the base chain's merge-wait and are intentionally not
// summed (they describe concurrency, not extra latency). In a shared
// no-copy group several branches carry the base version; Decompose
// then follows one branch's tiling (they all rejoin at the same merge
// timestamp, so the sum is identical whichever branch is walked).
func Decompose(spans []TraceEvent) (Attribution, bool) {
	var at Attribution
	if len(spans) == 0 || spans[0].Stage != StageClassify {
		return at, false
	}
	head := spans[0]
	at.PID = head.PID
	at.MID = head.MID
	at.Classify = head.Dur()
	at.Spans = 1
	chainVer := head.Ver

	used := make([]bool, len(spans))
	used[0] = true
	cursor := head.TS
	for {
		// Among unused same-version spans beginning exactly at the
		// cursor, pick the earliest-recorded (lowest Seq — spans arrive
		// seq-sorted, so first match wins).
		pick := -1
		for i, ev := range spans {
			if used[i] || ev.Ver != chainVer || ev.Stage == StageCopy {
				continue
			}
			if ev.Begin == cursor {
				pick = i
				break
			}
		}
		if pick < 0 {
			return at, false // chain broken: evicted span or still in flight
		}
		ev := spans[pick]
		used[pick] = true
		at.Spans++
		d := ev.Dur()
		switch ev.Stage {
		case StageRingWait:
			at.RingWait += d
		case StageNF:
			at.Service += d
		case StageMergeWait:
			at.MergeWait += d
		case StageMerge:
			at.Merge += d
		case StageOutput, StageDrop:
			at.Output += d
			at.E2E = ev.TS - head.Begin
			return at, true
		default:
			return at, false // classify cannot recur mid-chain
		}
		cursor = ev.TS
	}
}

// CriticalPath is one packet's parallelism measurement: the critical
// path of NF service time through the parallel graph versus the
// sequential sum of the same service times — the paper's per-packet
// latency win. CriticalNS <= SeqNS always (a path's service time can
// never exceed the sum over all NFs).
type CriticalPath struct {
	PID uint64 `json:"pid"`
	MID uint32 `json:"mid"`
	// E2E is the measured end-to-end latency.
	E2E int64 `json:"e2e_ns"`
	// CriticalNS is the largest accumulated NF service time along any
	// dependency path from classify to output.
	CriticalNS int64 `json:"critical_ns"`
	// SeqNS is the sum of every NF service span — what a sequential
	// chain would have paid in service time alone.
	SeqNS int64 `json:"seq_ns"`
}

// AnalyzeCriticalPath computes the critical path of one packet's span
// set (all version chains included). It replays spans in record order
// as a dataflow DP keyed by timestamp: every span propagates the
// accumulated service time from its begin timestamp to its end
// timestamp, NF spans add their duration, and joins take the max over
// their arriving tails — so the value at the output span's begin is
// the max-over-paths sum of service durations, the critical path.
func AnalyzeCriticalPath(spans []TraceEvent) (CriticalPath, bool) {
	var cp CriticalPath
	if len(spans) == 0 || spans[0].Stage != StageClassify {
		return cp, false
	}
	head := spans[0]
	cp.PID = head.PID
	cp.MID = head.MID

	// acc[ts] = max accumulated NF service time over all dependency
	// paths ending at timestamp ts. joins[j] accumulates the max over
	// tails that reached join j.
	acc := make(map[int64]int64, len(spans))
	joins := make(map[int]int64)
	prop := func(from, to, add int64) {
		if v := acc[from] + add; v > acc[to] {
			acc[to] = v
		}
	}
	for _, ev := range spans {
		switch ev.Stage {
		case StageClassify:
			prop(ev.Begin, ev.TS, 0)
		case StageNF:
			cp.SeqNS += ev.Dur()
			prop(ev.Begin, ev.TS, ev.Dur())
		case StageMergeWait:
			if v := acc[ev.Begin]; v > joins[ev.Join] {
				joins[ev.Join] = v
			}
			// The join's merge span starts at the shared merge-wait end
			// timestamp; publish the max-over-tails there.
			if v := joins[ev.Join]; v > acc[ev.TS] {
				acc[ev.TS] = v
			}
		case StageOutput, StageDrop:
			cp.CriticalNS = acc[ev.Begin]
			cp.E2E = ev.TS - head.Begin
			return cp, true
		default: // ring-wait, merge, copy: carry, add nothing
			prop(ev.Begin, ev.TS, 0)
		}
	}
	return cp, false // no terminal span retained
}

// MIDCriticalPath aggregates attribution and critical-path results for
// one micrograph (MID).
type MIDCriticalPath struct {
	MID     uint32 `json:"mid"`
	Packets int    `json:"packets"`

	// Percentiles over sampled packets, nanoseconds (<=12.5% bucket
	// error, same geometry as the /metrics histograms).
	E2EP50      uint64 `json:"e2e_p50_ns"`
	E2EP99      uint64 `json:"e2e_p99_ns"`
	CriticalP50 uint64 `json:"critical_p50_ns"`
	CriticalP99 uint64 `json:"critical_p99_ns"`
	SeqP50      uint64 `json:"seq_p50_ns"`
	SeqP99      uint64 `json:"seq_p99_ns"`

	// Speedup is the aggregate parallelism win: total sequential
	// service time divided by total critical-path service time across
	// all sampled packets (1.0 = no parallelism benefit).
	Speedup float64 `json:"speedup"`
	// SpeedupP50/P99 are percentiles of the per-packet seq/critical
	// ratio.
	SpeedupP50 float64 `json:"speedup_p50"`
	SpeedupP99 float64 `json:"speedup_p99"`

	// Attribution bucket totals (nanoseconds summed over packets).
	Classify  int64 `json:"classify_ns"`
	RingWait  int64 `json:"ring_wait_ns"`
	Service   int64 `json:"service_ns"`
	MergeWait int64 `json:"merge_wait_ns"`
	Merge     int64 `json:"merge_ns"`
	Output    int64 `json:"output_ns"`
	E2E       int64 `json:"e2e_ns"`

	totalCrit int64
	totalSeq  int64
	hE2E      *Histogram
	hCrit     *Histogram
	hSeq      *Histogram
	hSpeedup  *Histogram // per-packet seq/critical ratio, in milli (x1000)
}

// CriticalPathReport is the /debug/criticalpath document: per-MID
// latency attribution and parallel speedup over the retained sampled
// packets.
type CriticalPathReport struct {
	// Packets is the number of complete sampled packets analyzed.
	Packets int `json:"packets"`
	// Truncated counts packets whose trace head was evicted from the
	// ring; Unparsed counts retained traces whose chain did not
	// decompose (typically still in flight at snapshot time).
	Truncated int `json:"truncated"`
	Unparsed  int `json:"unparsed"`

	ByMID map[uint32]*MIDCriticalPath `json:"by_mid"`
}

// BuildCriticalPathReport analyzes every complete packet trace in
// events (as returned by Tracer.Events) and aggregates per MID.
func BuildCriticalPathReport(events []TraceEvent) CriticalPathReport {
	rep := CriticalPathReport{ByMID: map[uint32]*MIDCriticalPath{}}
	groups, truncated := GroupEvents(events)
	rep.Truncated = truncated
	for _, spans := range groups {
		at, ok := Decompose(spans)
		if !ok {
			rep.Unparsed++
			continue
		}
		cp, ok := AnalyzeCriticalPath(spans)
		if !ok {
			rep.Unparsed++
			continue
		}
		rep.Packets++
		mc := rep.ByMID[at.MID]
		if mc == nil {
			mc = &MIDCriticalPath{
				MID:      at.MID,
				hE2E:     NewHistogram(),
				hCrit:    NewHistogram(),
				hSeq:     NewHistogram(),
				hSpeedup: NewHistogram(),
			}
			rep.ByMID[at.MID] = mc
		}
		mc.Packets++
		mc.Classify += at.Classify
		mc.RingWait += at.RingWait
		mc.Service += at.Service
		mc.MergeWait += at.MergeWait
		mc.Merge += at.Merge
		mc.Output += at.Output
		mc.E2E += at.E2E
		mc.totalCrit += cp.CriticalNS
		mc.totalSeq += cp.SeqNS
		mc.hE2E.Record(at.E2E)
		mc.hCrit.Record(cp.CriticalNS)
		mc.hSeq.Record(cp.SeqNS)
		if cp.CriticalNS > 0 {
			mc.hSpeedup.Record(cp.SeqNS * 1000 / cp.CriticalNS)
		}
	}
	for _, mc := range rep.ByMID {
		e2e, crit, seq, sp := mc.hE2E.Snapshot(), mc.hCrit.Snapshot(), mc.hSeq.Snapshot(), mc.hSpeedup.Snapshot()
		mc.E2EP50, mc.E2EP99 = e2e.Percentile(50), e2e.Percentile(99)
		mc.CriticalP50, mc.CriticalP99 = crit.Percentile(50), crit.Percentile(99)
		mc.SeqP50, mc.SeqP99 = seq.Percentile(50), seq.Percentile(99)
		mc.SpeedupP50 = float64(sp.Percentile(50)) / 1000
		mc.SpeedupP99 = float64(sp.Percentile(99)) / 1000
		if mc.totalCrit > 0 {
			mc.Speedup = float64(mc.totalSeq) / float64(mc.totalCrit)
		}
	}
	return rep
}
