// Package telemetry is the dataplane's observability substrate: a
// central registry of named metrics cheap enough for the packet hot
// path. Counters are sharded across padded cache lines so concurrent NF
// runtimes never bounce the same line; histograms are fixed-size
// log-bucket arrays recorded with a single atomic add; gauges are one
// atomic word. Everything is lock-free after registration.
//
// All metric methods are nil-receiver safe: an uninstrumented component
// holds nil metric pointers and pays only a predictable branch, which
// lets the same code run instrumented and bare.
package telemetry

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Label is one name dimension (rendered as a Prometheus label).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// padCell is one counter shard on its own cache line.
type padCell struct {
	v atomic.Uint64
	_ [56]byte
}

// shardCount is the number of counter shards, a power of two sized to
// the core count (more shards than cores buys nothing).
var shardCount = func() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n <<= 1
	}
	return n
}()

// shardIndex picks a shard from the address of the caller's stack.
// Goroutine stacks live in distinct allocations, so discarding the
// in-frame bits spreads concurrent writers across shards without any
// runtime support. The pointer never escapes — it is consumed as an
// integer immediately.
func shardIndex(mask uint64) uint64 {
	var probe byte
	return (uint64(uintptr(unsafe.Pointer(&probe))) >> 10) & mask
}

// Counter is a monotonically increasing sharded counter.
type Counter struct {
	shards []padCell
	mask   uint64
}

// NewCounter creates an unregistered counter (register it with
// Registry.MustRegister, or use Registry.Counter to do both at once).
func NewCounter() *Counter {
	return &Counter{shards: make([]padCell, shardCount), mask: uint64(shardCount - 1)}
}

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.shards[shardIndex(c.mask)].v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards. Safe on a nil receiver (returns 0).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// NewGauge creates an unregistered gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta. Safe on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v is greater — a high-water mark.
// Safe on a nil receiver.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value loads the gauge. Safe on a nil receiver (returns 0).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metricKind discriminates registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// entry is one registered metric.
type entry struct {
	name   string
	labels []Label
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// key renders the unique registry key (name plus sorted labels).
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry is a set of named metrics. Lookup/registration takes a lock;
// holders of the returned metric pointers never do.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	order   []string // registration order for stable output
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

// sortLabels returns a sorted copy so label order never splits series.
func sortLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

func (r *Registry) lookup(name string, labels []Label, kind metricKind) *entry {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as a different kind", key))
		}
		return e
	}
	e := &entry{name: name, labels: labels, kind: kind}
	switch kind {
	case kindCounter:
		e.c = NewCounter()
	case kindGauge:
		e.g = NewGauge()
	case kindHistogram:
		e.h = NewHistogram()
	}
	r.entries[key] = e
	r.order = append(r.order, key)
	return e
}

// Counter returns the named counter, creating it on first use. Safe on
// a nil receiver (returns a nil Counter, whose methods no-op).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, sortLabels(labels), kindCounter).c
}

// Gauge returns the named gauge, creating it on first use. Safe on a
// nil receiver.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, sortLabels(labels), kindGauge).g
}

// Histogram returns the named histogram, creating it on first use. Safe
// on a nil receiver.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, sortLabels(labels), kindHistogram).h
}

// register inserts a pre-built metric under name+labels, panicking on a
// duplicate series — component authors own their metrics and attach
// them to a server's registry exactly once.
func (r *Registry) register(name string, labels []Label, kind metricKind, c *Counter, g *Gauge, h *Histogram) {
	if r == nil {
		return
	}
	labels = sortLabels(labels)
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[key]; dup {
		panic(fmt.Sprintf("telemetry: duplicate registration of %s", key))
	}
	r.entries[key] = &entry{name: name, labels: labels, kind: kind, c: c, g: g, h: h}
	r.order = append(r.order, key)
}

// MustRegisterCounter attaches an existing counter to the registry.
// Safe on a nil receiver (no-op).
func (r *Registry) MustRegisterCounter(name string, c *Counter, labels ...Label) {
	r.register(name, labels, kindCounter, c, nil, nil)
}

// MustRegisterGauge attaches an existing gauge to the registry. Safe on
// a nil receiver.
func (r *Registry) MustRegisterGauge(name string, g *Gauge, labels ...Label) {
	r.register(name, labels, kindGauge, nil, g, nil)
}

// MustRegisterHistogram attaches an existing histogram to the registry.
// Safe on a nil receiver.
func (r *Registry) MustRegisterHistogram(name string, h *Histogram, labels ...Label) {
	r.register(name, labels, kindHistogram, nil, nil, h)
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  uint64            `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// HistogramSnap is one histogram in a snapshot (nanosecond units).
type HistogramSnap struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Count  uint64            `json:"count"`
	Sum    uint64            `json:"sum"`
	Min    uint64            `json:"min"`
	Max    uint64            `json:"max"`
	P50    uint64            `json:"p50"`
	P95    uint64            `json:"p95"`
	P99    uint64            `json:"p99"`
}

// Snapshot is a point-in-time copy of every registered metric.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot copies every metric in registration order. Safe on a nil
// receiver (returns an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	keys := append([]string(nil), r.order...)
	entries := make([]*entry, len(keys))
	for i, k := range keys {
		entries[i] = r.entries[k]
	}
	r.mu.Unlock()
	for _, e := range entries {
		switch e.kind {
		case kindCounter:
			s.Counters = append(s.Counters, CounterSnap{
				Name: e.name, Labels: labelMap(e.labels), Value: e.c.Value(),
			})
		case kindGauge:
			s.Gauges = append(s.Gauges, GaugeSnap{
				Name: e.name, Labels: labelMap(e.labels), Value: e.g.Value(),
			})
		case kindHistogram:
			hs := e.h.Snapshot()
			s.Histograms = append(s.Histograms, HistogramSnap{
				Name: e.name, Labels: labelMap(e.labels),
				Count: hs.Count, Sum: hs.Sum, Min: hs.Min, Max: hs.Max,
				P50: hs.Percentile(50), P95: hs.Percentile(95), P99: hs.Percentile(99),
			})
		}
	}
	return s
}

// HistogramSeries is one live histogram of a family, with its labels —
// the registry handle diagnostics use to take full-bucket snapshots
// (Snapshot keeps only summary quantiles).
type HistogramSeries struct {
	Labels map[string]string
	H      *Histogram
}

// HistogramFamily returns the live histograms registered under name, in
// registration order. The returned pointers stay valid (and recording)
// for the registry's lifetime. Safe on a nil receiver (returns nil).
func (r *Registry) HistogramFamily(name string) []HistogramSeries {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []HistogramSeries
	for _, k := range r.order {
		e := r.entries[k]
		if e.kind == kindHistogram && e.name == name {
			out = append(out, HistogramSeries{Labels: labelMap(e.labels), H: e.h})
		}
	}
	return out
}

// seriesKey orders snapshot entries by name then sorted labels — the
// stable, diffable order tooling wants.
func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		b.WriteByte('\x00')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// Sort orders the snapshot's counters, gauges and histograms by
// name+labels, replacing the registry's registration order with one
// stable across processes — so repeated snapshots diff cleanly.
func (s *Snapshot) Sort() {
	sort.SliceStable(s.Counters, func(i, j int) bool {
		return seriesKey(s.Counters[i].Name, s.Counters[i].Labels) < seriesKey(s.Counters[j].Name, s.Counters[j].Labels)
	})
	sort.SliceStable(s.Gauges, func(i, j int) bool {
		return seriesKey(s.Gauges[i].Name, s.Gauges[i].Labels) < seriesKey(s.Gauges[j].Name, s.Gauges[j].Labels)
	})
	sort.SliceStable(s.Histograms, func(i, j int) bool {
		return seriesKey(s.Histograms[i].Name, s.Histograms[i].Labels) < seriesKey(s.Histograms[j].Name, s.Histograms[j].Labels)
	})
}

// CounterValue returns a registered counter's value by name+labels, 0
// if absent — a convenience for tests and reconciliation checks.
func (s Snapshot) CounterValue(name string, labels ...Label) uint64 {
	want := labelMap(sortLabels(labels))
	for _, c := range s.Counters {
		if c.Name == name && mapsEqual(c.Labels, want) {
			return c.Value
		}
	}
	return 0
}

// GaugeValue returns a registered gauge's value by name+labels, 0 if
// absent.
func (s Snapshot) GaugeValue(name string, labels ...Label) int64 {
	want := labelMap(sortLabels(labels))
	for _, g := range s.Gauges {
		if g.Name == name && mapsEqual(g.Labels, want) {
			return g.Value
		}
	}
	return 0
}

// SumCounters totals every counter series with the given name across
// all label sets.
func (s Snapshot) SumCounters(name string) uint64 {
	var sum uint64
	for _, c := range s.Counters {
		if c.Name == name {
			sum += c.Value
		}
	}
	return sum
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
