package telemetry

import (
	"math/rand"
	"sync"
	"testing"

	"nfp/internal/stats"
)

// TestBucketBoundaries proves the bucket layout is a partition of the
// value space: indices are contiguous and monotone, and every value
// falls inside its own bucket's bounds.
func TestBucketBoundaries(t *testing.T) {
	// Exact unit buckets below subCount.
	for v := uint64(0); v < subCount; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Errorf("bucketIndex(%d) = %d, want exact", v, got)
		}
	}
	// Probe around every power of two: bounds must contain the value
	// and indices must never decrease.
	prev := -1
	probe := func(v uint64) {
		i := bucketIndex(v)
		lo, hi := bucketBounds(i)
		if v < lo || v > hi {
			t.Fatalf("value %d outside bucket %d bounds [%d,%d]", v, i, lo, hi)
		}
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
	}
	for shift := 0; shift < 63; shift++ {
		base := uint64(1) << shift
		for _, off := range []uint64{0, 1, base / 2, base - 1} {
			if off < base {
				probe(base + off)
			}
		}
	}
	// Contiguity: every bucket's upper bound is one below the next
	// bucket's lower bound.
	for i := 0; i < bucketIndex(1<<40); i++ {
		_, hi := bucketBounds(i)
		lo, _ := bucketBounds(i + 1)
		if lo != hi+1 {
			t.Fatalf("gap between buckets %d and %d: hi=%d next lo=%d", i, i+1, hi, lo)
		}
	}
}

// TestPercentileVsStats checks the histogram's percentile extraction
// against internal/stats.Latency (exact, sample-keeping) ground truth:
// both use equal-rank semantics, so the exact percentile must land in
// the bucket the histogram reports, i.e. within one relative bucket
// width (12.5%).
func TestPercentileVsStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dist := range []struct {
		name string
		gen  func() int64
	}{
		{"uniform", func() int64 { return 1 + rng.Int63n(1_000_000) }},
		{"heavy-tail", func() int64 {
			v := int64(100)
			for rng.Float64() < 0.7 {
				v *= 3
			}
			return v
		}},
		{"constant", func() int64 { return 5000 }},
	} {
		h := NewHistogram()
		exact := stats.NewLatency(10000)
		for i := 0; i < 10000; i++ {
			v := dist.gen()
			h.Record(v)
			exact.Record(v)
		}
		snap := h.Snapshot()
		for _, p := range []float64{50, 90, 95, 99, 100} {
			want := exact.Percentile(p)
			got := snap.Percentile(p)
			// The histogram reports the bucket's upper bound, so got is
			// >= want and within one bucket width above it.
			lo, _ := bucketBounds(bucketIndex(uint64(want)))
			if got < lo {
				t.Errorf("%s p%.0f: histogram %d below exact bucket lower bound %d (exact %d)",
					dist.name, p, got, lo, want)
			}
			_, hi := bucketBounds(bucketIndex(uint64(want)))
			if got > hi && got > uint64(want) {
				// Allowed only via the min/max clamp.
				if got != snap.Max {
					t.Errorf("%s p%.0f: histogram %d beyond exact bucket upper bound %d (exact %d)",
						dist.name, p, got, hi, want)
				}
			}
		}
		if snap.Count != uint64(exact.Count()) {
			t.Errorf("%s: count %d != %d", dist.name, snap.Count, exact.Count())
		}
	}
}

func TestHistogramMinMaxMean(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{100, 200, 300, 400} {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Min != 100 || s.Max != 400 {
		t.Errorf("min/max = %d/%d, want 100/400", s.Min, s.Max)
	}
	if s.Mean() != 250 {
		t.Errorf("mean = %f, want 250", s.Mean())
	}
	if s.Sum != 1000 {
		t.Errorf("sum = %d, want 1000", s.Sum)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		a.Record(i)
		b.Record(i * 1000)
	}
	a.Merge(b)
	s := a.Snapshot()
	if s.Count != 2000 {
		t.Errorf("merged count = %d, want 2000", s.Count)
	}
	if s.Min != 1 || s.Max != 1_000_000 {
		t.Errorf("merged min/max = %d/%d", s.Min, s.Max)
	}
	// p50 of the merged set sits at the top of a's range.
	if p := s.Percentile(50); p < 900 || p > 1200 {
		t.Errorf("merged p50 = %d, want ≈1000", p)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// run under -race this is the lock-freedom proof, and the final count
// and sum must balance exactly.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const goroutines, perG = 8, 20000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.Record(1 + rng.Int63n(1_000_000))
			}
		}(int64(g))
	}
	// Concurrent snapshots must not trip the race detector either.
	for i := 0; i < 10; i++ {
		s := h.Snapshot()
		_ = s.Percentile(99)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Errorf("count = %d, want %d", s.Count, goroutines*perG)
	}
	var bucketSum uint64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}
