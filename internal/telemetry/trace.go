package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Stage identifies one hop of a packet's path through the dataplane.
type Stage uint8

const (
	// StageClassify is the classifier assigning MID/PID.
	StageClassify Stage = iota
	// StageNF is one NF runtime completing Process.
	StageNF
	// StageMerge is a merger instance finalizing a join.
	StageMerge
	// StageOutput is the packet leaving the service graph.
	StageOutput
	// StageDrop is the packet's drop being accounted at the output.
	StageDrop
)

func (s Stage) String() string {
	switch s {
	case StageClassify:
		return "classify"
	case StageNF:
		return "nf"
	case StageMerge:
		return "merge"
	case StageOutput:
		return "output"
	case StageDrop:
		return "drop"
	}
	return "stage(?)"
}

// MarshalText renders the stage name into JSON trace dumps.
func (s Stage) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a stage name back from a JSON trace dump.
func (s *Stage) UnmarshalText(b []byte) error {
	for cand := StageClassify; cand <= StageDrop; cand++ {
		if cand.String() == string(b) {
			*s = cand
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown stage %q", b)
}

// TraceEvent is one hop record of a sampled packet.
type TraceEvent struct {
	// Seq is a global monotonic sequence number; sorting by Seq
	// reconstructs hop order across goroutines.
	Seq uint64 `json:"seq"`
	PID uint64 `json:"pid"`
	MID uint32 `json:"mid"`
	// Stage says which pipeline layer recorded the hop.
	Stage Stage `json:"stage"`
	// Name identifies the component (NF name, merger instance, …).
	Name string `json:"name,omitempty"`
	// TS is the hop's wall-clock nanosecond timestamp.
	TS int64 `json:"ts"`
}

// Tracer records hop-by-hop packet paths for a sampled subset of PIDs
// into a bounded ring, overwriting the oldest events on wrap. Sampling
// is a two-instruction hash-and-mask on the immutable PID, so every
// hop of one packet is either fully traced or fully skipped; the
// Sampled check is the only cost unsampled packets pay.
type Tracer struct {
	mask uint64 // sample when mix(pid)&mask == 0
	seq  atomic.Uint64

	mu   sync.Mutex
	buf  []TraceEvent
	next int  // ring write cursor
	full bool // buf has wrapped at least once
}

// NewTracer creates a tracer sampling roughly one in sampleRate packets
// (rounded down to a power of two; 1 traces everything, <=0 returns a
// nil tracer, which disables tracing at zero cost) with a ring of
// capacity events (default 4096).
func NewTracer(sampleRate, capacity int) *Tracer {
	if sampleRate <= 0 {
		return nil
	}
	if capacity <= 0 {
		capacity = 4096
	}
	mask := uint64(1)
	for int(mask<<1) <= sampleRate {
		mask <<= 1
	}
	return &Tracer{mask: mask - 1, buf: make([]TraceEvent, 0, capacity)}
}

// mixPID decorrelates sequential PIDs (classifiers hand them out
// incrementally) so sampling picks a spread subset, not a prefix.
func mixPID(pid uint64) uint64 {
	pid *= 0x9e3779b97f4a7c15
	return pid ^ pid>>32
}

// Sampled reports whether pid's packet is traced. Safe on a nil
// receiver (never sampled).
func (t *Tracer) Sampled(pid uint64) bool {
	return t != nil && mixPID(pid)&t.mask == 0
}

// Record appends one hop event. Callers gate on Sampled first. Safe on
// a nil receiver.
func (t *Tracer) Record(pid uint64, mid uint32, stage Stage, name string, ts int64) {
	if t == nil {
		return
	}
	ev := TraceEvent{Seq: t.seq.Add(1), PID: pid, MID: mid, Stage: stage, Name: name, TS: ts}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.full = true
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.mu.Unlock()
}

// Events returns the retained events ordered by sequence number
// (oldest first). Safe on a nil receiver.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var out []TraceEvent
	if t.full {
		out = make([]TraceEvent, 0, cap(t.buf))
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append([]TraceEvent(nil), t.buf...)
	}
	t.mu.Unlock()
	// Ring order and seq order can diverge when concurrent writers
	// interleave between seq allocation and the locked append.
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// ByPID groups the retained events per packet, each group hop-ordered.
// Packets whose classify hop was already overwritten are dropped, so
// every returned trace starts at the classifier. Safe on a nil
// receiver.
func (t *Tracer) ByPID() map[uint64][]TraceEvent {
	evs := t.Events()
	if len(evs) == 0 {
		return nil
	}
	m := make(map[uint64][]TraceEvent)
	for _, ev := range evs {
		m[ev.PID] = append(m[ev.PID], ev)
	}
	for pid, hops := range m {
		if hops[0].Stage != StageClassify {
			delete(m, pid)
		}
	}
	return m
}
