package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Stage identifies one hop of a packet's path through the dataplane.
type Stage uint8

const (
	// StageClassify is the classifier assigning MID/PID.
	StageClassify Stage = iota
	// StageNF is one NF runtime completing Process.
	StageNF
	// StageMerge is a merger instance finalizing a join.
	StageMerge
	// StageOutput is the packet leaving the service graph.
	StageOutput
	// StageDrop is the packet's drop being accounted at the output.
	StageDrop
	// StageRingWait is the time a reference spent queued in an NF's
	// receive ring (producer enqueue to consumer dequeue).
	StageRingWait
	// StageMergeWait is one branch tail waiting in the Accumulating
	// Table (tail arrival to join completion).
	StageMergeWait
	// StageCopy is the materialization of a parallel-branch copy; its
	// SrcVer names the version it forked from.
	StageCopy
)

func (s Stage) String() string {
	switch s {
	case StageClassify:
		return "classify"
	case StageNF:
		return "nf"
	case StageMerge:
		return "merge"
	case StageOutput:
		return "output"
	case StageDrop:
		return "drop"
	case StageRingWait:
		return "ring-wait"
	case StageMergeWait:
		return "merge-wait"
	case StageCopy:
		return "copy"
	}
	return "stage(?)"
}

// MarshalText renders the stage name into JSON trace dumps.
func (s Stage) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a stage name back from a JSON trace dump.
func (s *Stage) UnmarshalText(b []byte) error {
	for cand := StageClassify; cand <= StageCopy; cand++ {
		if cand.String() == string(b) {
			*s = cand
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown stage %q", b)
}

// TraceEvent is one span of a sampled packet: the half-open interval
// [Begin, TS] a packet reference spent in one pipeline stage. Spans of
// one version chain tile contiguously — each span begins exactly where
// the previous span of its chain ended — so the stage durations of a
// packet sum to its end-to-end latency with no gaps or double counting.
// Point events recorded through Record degenerate to zero-length spans.
type TraceEvent struct {
	// Seq is a global monotonic sequence number; sorting by Seq
	// reconstructs hop order across goroutines.
	Seq uint64 `json:"seq"`
	PID uint64 `json:"pid"`
	MID uint32 `json:"mid"`
	// Ver is the packet-copy version the span was recorded for (the
	// original is 1; parallel copies get their own chains).
	Ver uint8 `json:"ver,omitempty"`
	// Stage says which pipeline layer recorded the span.
	Stage Stage `json:"stage"`
	// Name identifies the component (NF name, merger instance, …).
	Name string `json:"name,omitempty"`
	// Begin is the span's start wall-clock nanosecond timestamp.
	Begin int64 `json:"begin,omitempty"`
	// TS is the span's end wall-clock nanosecond timestamp.
	TS int64 `json:"ts"`
	// Join is 1 + the join ID on merge-wait and merge spans (0 = the
	// span is not part of a join).
	Join int `json:"join,omitempty"`
	// Shard is 1 + the dataplane shard the span was recorded on, so a
	// single-shard server keeps emitting byte-identical events (0 =
	// not sharded).
	Shard int `json:"shard,omitempty"`
	// Gen is the config generation the span's packet was injected
	// under, for spans recorded after a live reload (0 = generation 1,
	// so a never-reloaded server keeps emitting byte-identical events).
	Gen int `json:"gen,omitempty"`
	// SrcVer is the version a copy span forked from (copy spans only).
	SrcVer uint8 `json:"srcver,omitempty"`
}

// Dur returns the span's duration in nanoseconds.
func (e TraceEvent) Dur() int64 { return e.TS - e.Begin }

// cursorKey identifies one in-flight ring delivery of a sampled packet:
// a (pid, version) reference enqueued toward one NF runtime.
type cursorKey struct {
	pid  uint64
	ver  uint8
	node int
}

// Tracer records per-stage spans of a sampled subset of packets into a
// bounded ring, overwriting the oldest events on wrap. Sampling is a
// two-instruction hash-and-mask on the immutable PID, so every hop of
// one packet is either fully traced or fully skipped; the Sampled check
// is the only cost unsampled packets pay.
type Tracer struct {
	mask uint64 // sample when mix(pid)&mask == 0
	seq  atomic.Uint64

	// evicted counts ring overwrites; nil until SetEvictedCounter.
	evicted *Counter

	mu   sync.Mutex
	buf  []TraceEvent
	next int  // ring write cursor
	full bool // buf has wrapped at least once

	// cursors carries span-chain cursors across ring handoffs: the
	// producer stashes its chain position when it enqueues a sampled
	// reference, the consuming runtime takes it back at dequeue as the
	// ring-wait span's begin. Keyed per delivery, so parallel branches
	// that share one packet reference never race on a common field.
	cmu     sync.Mutex
	cursors map[cursorKey]int64
}

// NewTracer creates a tracer sampling roughly one in sampleRate packets
// (rounded down to a power of two; 1 traces everything, <=0 returns a
// nil tracer, which disables tracing at zero cost) with a ring of
// capacity events (default 4096).
func NewTracer(sampleRate, capacity int) *Tracer {
	if sampleRate <= 0 {
		return nil
	}
	if capacity <= 0 {
		capacity = 4096
	}
	mask := uint64(1)
	for int(mask<<1) <= sampleRate {
		mask <<= 1
	}
	return &Tracer{
		mask:    mask - 1,
		buf:     make([]TraceEvent, 0, capacity),
		cursors: make(map[cursorKey]int64),
	}
}

// mixPID decorrelates sequential PIDs (classifiers hand them out
// incrementally) so sampling picks a spread subset, not a prefix.
func mixPID(pid uint64) uint64 {
	pid *= 0x9e3779b97f4a7c15
	return pid ^ pid>>32
}

// Sampled reports whether pid's packet is traced. Safe on a nil
// receiver (never sampled).
func (t *Tracer) Sampled(pid uint64) bool {
	return t != nil && mixPID(pid)&t.mask == 0
}

// SetEvictedCounter wires a counter that ticks once per trace event
// overwritten on ring wrap, making eviction pressure visible. Call
// before recording begins.
func (t *Tracer) SetEvictedCounter(c *Counter) {
	if t != nil {
		t.evicted = c
	}
}

// Record appends one zero-length span (a point event) — the
// compatibility shim over RecordSpan. Callers gate on Sampled first.
// Safe on a nil receiver.
func (t *Tracer) Record(pid uint64, mid uint32, stage Stage, name string, ts int64) {
	t.RecordSpan(TraceEvent{PID: pid, MID: mid, Stage: stage, Name: name, Begin: ts, TS: ts})
}

// RecordSpan appends one span. The tracer assigns Seq; a Begin that is
// unset, negative, or after TS clamps to TS (zero-length span), so
// durations are never negative. Callers gate on Sampled first. Safe on
// a nil receiver.
func (t *Tracer) RecordSpan(ev TraceEvent) {
	if t == nil {
		return
	}
	if ev.Begin <= 0 || ev.Begin > ev.TS {
		ev.Begin = ev.TS
	}
	ev.Seq = t.seq.Add(1)
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.full = true
		t.evicted.Inc()
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.mu.Unlock()
}

// StashCursor records the chain cursor of a sampled (pid, ver)
// reference about to be enqueued toward node, to be taken back by the
// consumer as its ring-wait begin. Safe on a nil receiver.
func (t *Tracer) StashCursor(pid uint64, ver uint8, node int, ts int64) {
	if t == nil {
		return
	}
	t.cmu.Lock()
	t.cursors[cursorKey{pid: pid, ver: ver, node: node}] = ts
	t.cmu.Unlock()
}

// TakeCursor removes and returns the stashed cursor for a (pid, ver)
// delivery to node, or 0 when none was stashed. Safe on a nil receiver.
func (t *Tracer) TakeCursor(pid uint64, ver uint8, node int) int64 {
	if t == nil {
		return 0
	}
	key := cursorKey{pid: pid, ver: ver, node: node}
	t.cmu.Lock()
	ts := t.cursors[key]
	delete(t.cursors, key)
	t.cmu.Unlock()
	return ts
}

// Events returns the retained events ordered by sequence number
// (oldest first). Safe on a nil receiver.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var out []TraceEvent
	if t.full {
		out = make([]TraceEvent, 0, cap(t.buf))
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append([]TraceEvent(nil), t.buf...)
	}
	t.mu.Unlock()
	// Ring order and seq order can diverge when concurrent writers
	// interleave between seq allocation and the locked append.
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// GroupEvents groups a seq-ordered event slice per packet. Packets
// whose classify span was already overwritten are removed from the
// groups and reported in the second return value as truncated, so
// every returned trace starts at the classifier and eviction is
// visible instead of silent.
func GroupEvents(evs []TraceEvent) (map[uint64][]TraceEvent, int) {
	if len(evs) == 0 {
		return nil, 0
	}
	m := make(map[uint64][]TraceEvent)
	for _, ev := range evs {
		m[ev.PID] = append(m[ev.PID], ev)
	}
	truncated := 0
	for pid, hops := range m {
		if hops[0].Stage != StageClassify {
			delete(m, pid)
			truncated++
		}
	}
	return m, truncated
}

// GroupByPID groups the retained events per packet, each group
// hop-ordered, plus the number of packets dropped because their head
// (the classify span) was evicted from the ring. Safe on a nil
// receiver.
func (t *Tracer) GroupByPID() (map[uint64][]TraceEvent, int) {
	return GroupEvents(t.Events())
}

// ByPID is GroupByPID without the truncation count, kept for callers
// that only need the complete traces. Safe on a nil receiver.
func (t *Tracer) ByPID() map[uint64][]TraceEvent {
	m, _ := t.GroupByPID()
	return m
}
