package sim

import (
	"math"
	"testing"

	"nfp/internal/graph"
	"nfp/internal/nfa"
)

// TestDESMatchesAnalyticBottleneck: the event-driven simulation's
// saturation throughput must agree with the closed-form bottleneck
// analysis for parallel firewall graphs (which sit below line rate, so
// no cap interferes).
func TestDESMatchesAnalyticBottleneck(t *testing.T) {
	p := DefaultParams()
	for _, degree := range []int{1, 2, 3, 5} {
		g := fwPar(degree)
		analytic := p.ThroughputGraph(g, 64, 2)
		des, err := SaturationMpps(p, g, 64, 2, 20000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(des-analytic)/analytic > 0.08 {
			t.Errorf("degree %d: DES %.2f Mpps vs analytic %.2f Mpps", degree, des, analytic)
		}
	}
}

// TestDESMergerBottleneck: with a single merger at degree 5, the DES
// must reproduce the analytic merger-bound rate.
func TestDESMergerBottleneck(t *testing.T) {
	p := DefaultParams()
	g := fwPar(5)
	analytic := p.ThroughputGraph(g, 64, 1)
	des, err := SaturationMpps(p, g, 64, 1, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(des-analytic)/analytic > 0.08 {
		t.Errorf("DES %.2f vs analytic %.2f (merger-bound)", des, analytic)
	}
	// The merger stages must be the busiest.
	d, _ := NewDES(p, g, 64, 1)
	d.Run(20000, 0.0001)
	util := d.Utilization()
	if util["merger0"] < 0.95 {
		t.Errorf("merger utilization = %.2f, want ≈1 at saturation (util: %v)", util["merger0"], util)
	}
}

// TestDESLatencyKnee: mean latency is flat at low load and explodes as
// the offered rate crosses the bottleneck — the queueing behaviour the
// closed-form model cannot express.
func TestDESLatencyKnee(t *testing.T) {
	p := DefaultParams()
	g := fwPar(2)
	capacity := p.ThroughputGraph(g, 64, 2) // Mpps = pkts/µs

	runAt := func(frac float64) float64 {
		d, err := NewDES(p, g, 64, 2)
		if err != nil {
			t.Fatal(err)
		}
		interval := 1 / (capacity * frac)
		lat, _ := d.Run(8000, interval)
		return lat
	}
	low := runAt(0.3)
	mid := runAt(0.8)
	over := runAt(1.5)
	// Deterministic arrivals below capacity see no queueing at all
	// (D/D/1), so low ≈ mid; overload must explode.
	if low > mid+0.01 || mid >= over {
		t.Errorf("latency not monotone in load: %.4f, %.4f, %.4f", low, mid, over)
	}
	if over < 5*low {
		t.Errorf("no queueing knee: overload latency %.2f vs idle %.2f", over, low)
	}
	// At low load, DES latency ≈ sum of service times (no batching
	// inflation in this model) — small and positive.
	if low <= 0 {
		t.Errorf("idle latency = %.2f", low)
	}
}

// TestDESSequentialVsParallelLatency: at low load the parallel graph's
// service latency is below the sequential chain's.
func TestDESSequentialVsParallelLatency(t *testing.T) {
	p := DefaultParams().WithSyntheticCycles(3000)
	seq := graph.Seq{Items: []graph.Node{
		graph.NF{Name: nfa.NFSynthetic}, graph.NF{Name: nfa.NFSynthetic, Instance: 1},
	}}
	par := graph.Par{Branches: []graph.Node{
		graph.NF{Name: nfa.NFSynthetic}, graph.NF{Name: nfa.NFSynthetic, Instance: 1},
	}}
	run := func(g graph.Node) float64 {
		d, err := NewDES(p, g, 64, 2)
		if err != nil {
			t.Fatal(err)
		}
		lat, _ := d.Run(2000, 10) // well below capacity
		return lat
	}
	seqLat := run(seq)
	parLat := run(par)
	if parLat >= seqLat {
		t.Errorf("parallel %.2fµs not below sequential %.2fµs", parLat, seqLat)
	}
}

// TestDESEmptyRun covers the degenerate path.
func TestDESEmptyRun(t *testing.T) {
	d, err := NewDES(DefaultParams(), fwPar(2), 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	lat, rate := d.Run(0, 1)
	if lat != 0 || rate != 0 {
		t.Errorf("empty run = %.2f, %.2f", lat, rate)
	}
}
