package sim

import (
	"container/heap"
	"fmt"

	"nfp/internal/dataplane"
	"nfp/internal/graph"
)

// DES is a discrete-event simulation of the NFP dataplane: it
// interprets a compiled execution plan (the same Plan the live
// dataplane runs) over virtual time, with every stage — classifier, NF
// runtimes, merger instances — modeled as a single-server FIFO queue
// whose service times come from the calibrated Params.
//
// The DES serves two purposes the closed-form model cannot:
//
//   - it validates the analytic bottleneck throughput from first
//     principles (tests assert they agree), and
//   - it produces latency-vs-offered-load curves, exposing the
//     queueing knee as the input rate approaches the bottleneck.
type DES struct {
	params  Params
	plan    *dataplane.Plan
	mergers int

	stages []*desStage // 0 = classifier, 1..N = NFs, then mergers
	events eventHeap
	now    float64

	// per-(join,pid) tail accounting, mirroring the merger AT.
	pending map[joinKey]*joinState

	completed  int
	latencySum float64
	lastOut    float64
}

type joinKey struct {
	join int
	pid  uint64
}

type joinState struct {
	count int
}

type desStage struct {
	name      string
	serviceUS float64
	busyUntil float64
	queued    int
	busyTime  float64
}

// event is one packet arriving at a stage at a virtual time.
type event struct {
	at    float64
	stage int
	pid   uint64
	birth float64
	// what to run after the stage's service completes.
	kind eventKind
	node int // NF index for evNode
	join int // join index for evJoin
}

type eventKind uint8

const (
	evClassify eventKind = iota
	evNode
	evJoin
)

type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// NewDES compiles g and builds the simulation.
func NewDES(params Params, g graph.Node, frameSize, mergers int) (*DES, error) {
	if mergers <= 0 {
		mergers = 2
	}
	plan, err := dataplane.CompilePlan(1, g)
	if err != nil {
		return nil, err
	}
	d := &DES{
		params:  params,
		plan:    plan,
		mergers: mergers,
		pending: map[joinKey]*joinState{},
	}
	d.stages = append(d.stages, &desStage{name: "classifier", serviceUS: params.ClassifyServiceUS})
	pl := payloadBytes(frameSize)
	for _, n := range plan.Nodes {
		svc := params.cost(n.NF.Name).ServiceUS +
			params.cost(n.NF.Name).PerKBUS*float64(pl)/1024 +
			params.HopServiceUS
		d.stages = append(d.stages, &desStage{name: n.NF.String(), serviceUS: svc})
	}
	for m := 0; m < mergers; m++ {
		d.stages = append(d.stages, &desStage{
			name:      fmt.Sprintf("merger%d", m),
			serviceUS: params.MergeItemServiceUS,
		})
	}
	return d, nil
}

func (d *DES) nodeStage(node int) int { return 1 + node }
func (d *DES) mergerStage(pid uint64) int {
	return 1 + len(d.plan.Nodes) + int(pid%uint64(d.mergers))
}

// Run simulates n packets arriving every intervalUS and returns the
// mean end-to-end latency (µs) and the measured output rate (Mpps).
func (d *DES) Run(n int, intervalUS float64) (meanLatencyUS, outputMpps float64) {
	for i := 0; i < n; i++ {
		at := float64(i) * intervalUS
		heap.Push(&d.events, event{
			at: at, stage: 0, pid: uint64(i + 1), birth: at, kind: evClassify,
		})
	}
	for d.events.Len() > 0 {
		e := heap.Pop(&d.events).(event)
		d.now = e.at
		st := d.stages[e.stage]
		start := d.now
		if st.busyUntil > start {
			start = st.busyUntil
		}
		finish := start + st.serviceUS
		st.busyUntil = finish
		st.busyTime += st.serviceUS
		d.dispatch(e, finish)
	}
	if d.completed == 0 {
		return 0, 0
	}
	mean := d.latencySum / float64(d.completed)
	rate := float64(d.completed) / d.lastOut // packets per µs = Mpps
	return mean, rate
}

// dispatch performs the post-service forwarding of one event.
func (d *DES) dispatch(e event, finish float64) {
	switch e.kind {
	case evClassify:
		d.execList(d.plan.Entry, e, finish)
	case evNode:
		d.execList(d.plan.Nodes[e.node].Next, e, finish)
	case evJoin:
		key := joinKey{join: e.join, pid: e.pid}
		js := d.pending[key]
		if js == nil {
			js = &joinState{}
			d.pending[key] = js
		}
		js.count++
		spec := d.plan.Joins[e.join]
		if js.count < spec.ExpectTails {
			return
		}
		delete(d.pending, key)
		d.execList(spec.Next, e, finish)
	}
}

// execList models a dispatch list at virtual time t: copies add copy
// latency serially (they happen on the dispatching stage), deliveries
// schedule arrivals at the target stages.
func (d *DES) execList(ds []dataplane.Dispatch, e event, t float64) {
	for _, disp := range ds {
		if disp.NewVersion != 0 {
			if disp.FullCopy {
				t += d.params.CopyHeaderUS + d.params.CopyFullPerKBUS // coarse: ~1KB frame
			} else {
				t += d.params.CopyHeaderUS
			}
			continue
		}
		for _, target := range disp.Targets {
			switch target.Kind {
			case dataplane.ToNode:
				heap.Push(&d.events, event{
					at: t, stage: d.nodeStage(target.Node),
					pid: e.pid, birth: e.birth, kind: evNode, node: target.Node,
				})
			case dataplane.ToJoin:
				heap.Push(&d.events, event{
					at: t, stage: d.mergerStage(e.pid),
					pid: e.pid, birth: e.birth, kind: evJoin, join: target.Join,
				})
			case dataplane.ToOutput:
				d.completed++
				d.latencySum += t - e.birth
				if t > d.lastOut {
					d.lastOut = t
				}
			}
		}
	}
}

// Utilization returns per-stage busy fractions after Run, keyed by
// stage name — the bottleneck diagnosis view.
func (d *DES) Utilization() map[string]float64 {
	out := map[string]float64{}
	if d.lastOut <= 0 {
		return out
	}
	for _, st := range d.stages {
		out[st.name] = st.busyTime / d.lastOut
	}
	return out
}

// SaturationMpps estimates the zero-loss capacity by driving the DES
// far above any plausible service rate and measuring the drain rate.
func SaturationMpps(params Params, g graph.Node, frameSize, mergers, n int) (float64, error) {
	d, err := NewDES(params, g, frameSize, mergers)
	if err != nil {
		return 0, err
	}
	_, rate := d.Run(n, 0.0001) // effectively simultaneous arrivals
	return rate, nil
}
