package sim

import (
	"math"
	"testing"

	"nfp/internal/graph"
	"nfp/internal/nfa"
)

func within(t *testing.T, name string, got, want, tolFrac float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero target", name)
	}
	if math.Abs(got-want)/want > tolFrac {
		t.Errorf("%s = %.2f, want %.2f ±%.0f%%", name, got, want, tolFrac*100)
	}
}

func fwPar(n int) graph.Node {
	if n == 1 {
		return graph.NF{Name: nfa.NFFirewall}
	}
	branches := make([]graph.Node, n)
	for i := range branches {
		branches[i] = graph.NF{Name: nfa.NFFirewall, Instance: i}
	}
	return graph.Par{Branches: branches}
}

func fwChain(n int) []string {
	chain := make([]string, n)
	for i := range chain {
		chain[i] = nfa.NFFirewall
	}
	return chain
}

// TestTable4Calibration pins the model to Table 4: latency and rate of
// OpenNetVM, NFP (all NFs parallel) and BESS for firewall chains of
// length 1–3 at 64B, with n+2 cores (BESS replicas = n+2).
func TestTable4Calibration(t *testing.T) {
	p := DefaultParams()
	wantONVM := []float64{25, 33, 47}
	wantNFP := []float64{23, 27, 31}
	wantBESS := []float64{11.308, 11.370, 11.407}
	for n := 1; n <= 3; n++ {
		within(t, "ONVM latency", p.LatencyONVM(fwChain(n), 64), wantONVM[n-1], 0.15)
		within(t, "NFP latency", p.LatencyGraph(fwPar(n), 64), wantNFP[n-1], 0.10)
		within(t, "BESS latency", p.LatencyRTC(fwChain(n), 64), wantBESS[n-1], 0.05)
	}
	// Rates: BESS reaches line rate (14.7 Mpps), NFP ≈ 10.9 constant,
	// ONVM below NFP and degrading with length.
	for n := 1; n <= 3; n++ {
		within(t, "NFP rate", p.ThroughputGraph(fwPar(n), 64, 2), 10.9, 0.10)
		within(t, "BESS rate", p.ThroughputRTC(fwChain(n), 64, n+2), 14.7, 0.05)
		onvm := p.ThroughputONVM(fwChain(n), 64)
		nfp := p.ThroughputGraph(fwPar(n), 64, 2)
		bess := p.ThroughputRTC(fwChain(n), 64, n+2)
		if !(bess > nfp && nfp > onvm) {
			t.Errorf("n=%d rate ranking: bess=%.1f nfp=%.1f onvm=%.1f", n, bess, nfp, onvm)
		}
	}
}

// TestFig7Shape: sequential chains grow linearly in latency for both
// platforms; NFP holds line rate for every size while ONVM degrades
// with chain length at small packets.
func TestFig7Shape(t *testing.T) {
	p := DefaultParams()
	chain := func(n int) []string {
		c := make([]string, n)
		for i := range c {
			c[i] = nfa.NFL3Fwd
		}
		return c
	}
	var prevNFP, prevONVM float64
	for n := 1; n <= 5; n++ {
		nfp := p.LatencySeqNFP(chain(n), 64)
		onvm := p.LatencyONVM(chain(n), 64)
		if n > 1 && (nfp <= prevNFP || onvm <= prevONVM) {
			t.Errorf("latency not increasing at n=%d", n)
		}
		prevNFP, prevONVM = nfp, onvm
	}
	// NFP achieves line rate at every size (Fig 7b).
	for _, size := range []int{64, 128, 256, 512, 1024, 1500} {
		rate := p.ThroughputSeqNFP(chain(5), size)
		line := lineMpps(size)
		if math.Abs(rate-line)/line > 0.01 {
			t.Errorf("NFP rate at %dB = %.2f, want line %.2f", size, rate, line)
		}
	}
	// ONVM at 64B degrades monotonically with chain length and sits
	// below line rate.
	prev := math.Inf(1)
	for n := 1; n <= 5; n++ {
		r := p.ThroughputONVM(chain(n), 64)
		if r >= prev {
			t.Errorf("ONVM rate not degrading at n=%d: %.2f >= %.2f", n, r, prev)
		}
		if r >= lineMpps(64) {
			t.Errorf("ONVM at line rate for n=%d", n)
		}
		prev = r
	}
	// At 1500B even ONVM reaches line rate (Fig 7b's right edge).
	if r := p.ThroughputONVM(chain(1), 1500); math.Abs(r-lineMpps(1500)) > 0.01 {
		t.Errorf("ONVM at 1500B = %.3f, want line %.3f", r, lineMpps(1500))
	}
}

// TestFig9Shape: the parallel latency benefit grows with NF
// complexity, approaching ~45–50% at 3000 cycles (paper: "around 45%").
func TestFig9Shape(t *testing.T) {
	seq2 := func(cycles int) float64 {
		p := DefaultParams().WithSyntheticCycles(cycles)
		return p.LatencySeqNFP([]string{nfa.NFSynthetic, nfa.NFSynthetic}, 64)
	}
	par2 := func(cycles int) float64 {
		p := DefaultParams().WithSyntheticCycles(cycles)
		g := graph.Par{Branches: []graph.Node{
			graph.NF{Name: nfa.NFSynthetic}, graph.NF{Name: nfa.NFSynthetic, Instance: 1},
		}}
		return p.LatencyGraph(g, 64)
	}
	var prevCut float64
	for _, cycles := range []int{1, 300, 900, 1500, 2100, 2700, 3000} {
		cut := 1 - par2(cycles)/seq2(cycles)
		if cut < prevCut {
			t.Errorf("latency cut shrank at %d cycles: %.3f < %.3f", cycles, cut, prevCut)
		}
		prevCut = cut
	}
	final := 1 - par2(3000)/seq2(3000)
	if final < 0.35 || final > 0.50 {
		t.Errorf("cut at 3000 cycles = %.1f%%, want ≈45%%", final*100)
	}
}

// TestFig11Shape: higher parallelism degree brings a larger latency
// cut (33%→52% no-copy in the paper), but never the theoretical 80%.
func TestFig11Shape(t *testing.T) {
	p := DefaultParams().WithSyntheticCycles(300)
	seq := func(n int) float64 {
		c := make([]string, n)
		for i := range c {
			c[i] = nfa.NFSynthetic
		}
		return p.LatencySeqNFP(c, 64)
	}
	par := func(n int) float64 {
		branches := make([]graph.Node, n)
		for i := range branches {
			branches[i] = graph.NF{Name: nfa.NFSynthetic, Instance: i}
		}
		return p.LatencyGraph(graph.Par{Branches: branches}, 64)
	}
	prev := 0.0
	for d := 2; d <= 5; d++ {
		cut := 1 - par(d)/seq(d)
		if cut <= prev {
			t.Errorf("cut not growing at degree %d: %.3f", d, cut)
		}
		if d == 5 && cut > 0.8 {
			t.Errorf("degree-5 cut %.2f exceeds the theoretical bound", cut)
		}
		prev = cut
	}
	d2 := 1 - par(2)/seq(2)
	d5 := 1 - par(5)/seq(5)
	if d2 < 0.20 || d2 > 0.45 {
		t.Errorf("degree-2 cut = %.1f%%, want ≈33%%", d2*100)
	}
	if d5 < 0.40 || d5 > 0.65 {
		t.Errorf("degree-5 cut = %.1f%%, want ≈52%%", d5*100)
	}
}

// TestFig12Shape: latency tracks the equivalent chain length across
// the six graph structures of Figure 14.
func TestFig12Shape(t *testing.T) {
	p := DefaultParams().WithSyntheticCycles(300)
	mk := func(i int) graph.NF { return graph.NF{Name: nfa.NFSynthetic, Instance: i} }
	graphs := []graph.Node{
		graph.Seq{Items: []graph.Node{mk(0), mk(1), mk(2), mk(3)}},
		graph.Par{Branches: []graph.Node{mk(0), mk(1), mk(2), mk(3)}},
		graph.Seq{Items: []graph.Node{mk(0), graph.Par{Branches: []graph.Node{mk(1), mk(2), mk(3)}}}},
		graph.Seq{Items: []graph.Node{mk(0), graph.Par{Branches: []graph.Node{mk(1), mk(2)}}, mk(3)}},
		graph.Par{Branches: []graph.Node{mk(0), graph.Seq{Items: []graph.Node{mk(1), mk(2), mk(3)}}}},
		graph.Seq{Items: []graph.Node{
			graph.Par{Branches: []graph.Node{mk(0), mk(1)}},
			graph.Par{Branches: []graph.Node{mk(2), mk(3)}},
		}},
	}
	lat := make([]float64, len(graphs))
	for i, g := range graphs {
		lat[i] = p.LatencyGraph(g, 64)
	}
	// Graph 2 (equivalent length 1) is the fastest; graph 1 (length 4)
	// the slowest; graphs with shorter equivalent length are faster.
	if lat[1] >= lat[0] || lat[1] >= lat[4] {
		t.Errorf("graph 2 not fastest: %v", lat)
	}
	for i, g := range graphs {
		if graph.EquivalentLength(g) == 4 && lat[i] != lat[0] {
			t.Errorf("length-4 graphs disagree: %v", lat)
		}
	}
	// Graph 5 (length 3) sees little reduction vs sequential.
	cut5 := 1 - lat[4]/lat[0]
	if cut5 > 0.30 {
		t.Errorf("graph 5 cut = %.1f%%, want small", cut5*100)
	}
	// Ranking by equivalent length.
	type le struct {
		l   int
		lat float64
	}
	var les []le
	for i, g := range graphs {
		les = append(les, le{graph.EquivalentLength(g), lat[i]})
	}
	for _, a := range les {
		for _, b := range les {
			if a.l < b.l && a.lat >= b.lat {
				t.Errorf("length %d latency %.1f not < length %d latency %.1f",
					a.l, a.lat, b.l, b.lat)
			}
		}
	}
}

// TestMergerCapacityCalibration: one merger instance sustains ≈10.7
// Mpps of collected copies at degree 2 (§6.3.3), and two instances
// keep a degree-5 graph at full NF-bound speed.
func TestMergerCapacityCalibration(t *testing.T) {
	p := DefaultParams()
	oneMergerRate := 1 / (p.MergeItemServiceUS * 2)
	within(t, "single merger rate", oneMergerRate, 10.7, 0.05)

	// At degree 4, two mergers keep up with the NF bound; at degree 5
	// they sit within ~80% of it, and doubling mergers restores it.
	nfBound := 1 / (p.NF[nfa.NFFirewall].ServiceUS + p.HopServiceUS)
	g4 := fwPar(4).(graph.Par)
	if with2 := p.ThroughputGraph(g4, 64, 2); with2 < nfBound*0.95 {
		t.Errorf("2 mergers bottleneck degree 4: %.2f < %.2f", with2, nfBound)
	}
	g5 := fwPar(5).(graph.Par)
	with2 := p.ThroughputGraph(g5, 64, 2)
	if with2 < nfBound*0.75 {
		t.Errorf("2 mergers far below NF bound at degree 5: %.2f < %.2f", with2, nfBound)
	}
	with1 := p.ThroughputGraph(g5, 64, 1)
	if with1 >= with2 {
		t.Errorf("1 merger should bottleneck degree 5: %.2f >= %.2f", with1, with2)
	}
	if with4 := p.ThroughputGraph(g5, 64, 4); with4 < nfBound*0.95 {
		t.Errorf("4 mergers still bottleneck degree 5: %.2f", with4)
	}
}

// TestSizeDependentNFs: VPN and IDS latency grows with payload.
func TestSizeDependentNFs(t *testing.T) {
	p := DefaultParams()
	small := p.LatencySeqNFP([]string{nfa.NFVPN}, 64)
	big := p.LatencySeqNFP([]string{nfa.NFVPN}, 1500)
	if big <= small {
		t.Errorf("VPN latency flat in size: %.1f vs %.1f", small, big)
	}
	if p.LatencySeqNFP([]string{nfa.NFL3Fwd}, 1500) !=
		p.LatencySeqNFP([]string{nfa.NFL3Fwd}, 64) {
		t.Error("forwarder latency should be size-independent")
	}
}

// TestUnknownNFDefaultsToFirewall keeps the model total for custom NFs.
func TestUnknownNFDefaultsToFirewall(t *testing.T) {
	p := DefaultParams()
	if p.LatencySeqNFP([]string{"custom"}, 64) != p.LatencySeqNFP([]string{nfa.NFFirewall}, 64) {
		t.Error("unknown NF cost != firewall default")
	}
}
