// Package sim is the deterministic analytic performance model used to
// regenerate the paper's figures. The live dataplane in this repository
// runs real goroutines, but the host it runs on (often a single core)
// cannot exhibit the wall-clock effects of the paper's 20-core testbed;
// this model computes the latency and throughput each platform would
// show, from first principles:
//
//   - pipelining latency = fixed I/O + per-hop delivery + NF costs,
//     with parallel stages contributing the maximum of their branches
//     plus copy and merge costs (§2.1, §6.2);
//   - the OpenNetVM baseline serializes every hop through a
//     centralized switch whose queueing penalty grows with chain
//     length (§6.2.1);
//   - throughput is the bottleneck stage's service rate, capped at
//     line rate (§6.2.1, Table 4);
//   - run-to-completion consolidates the chain into one function call,
//     paying I/O once (§7, Table 4).
//
// Constants are calibrated against Table 4 and Figure 7 (see
// EXPERIMENTS.md); every experiment reports model output next to the
// paper's numbers so the deviation is visible.
package sim

import (
	"fmt"

	"nfp/internal/graph"
	"nfp/internal/nfa"
	"nfp/internal/packet"
	"nfp/internal/stats"
)

// NFCost models one NF type's contribution.
type NFCost struct {
	// LatencyUS is the per-packet latency cost in µs (pipeline
	// resident time: batching, wakeup, processing) at zero payload.
	LatencyUS float64
	// PerKBUS adds latency per KB of payload (VPN encryption, IDS
	// scanning).
	PerKBUS float64
	// ServiceUS is the busy time per packet that bounds the NF's
	// throughput on a dedicated core.
	ServiceUS float64
}

// Latency returns the NF's latency cost for a payload size.
func (c NFCost) Latency(payloadBytes int) float64 {
	return c.LatencyUS + c.PerKBUS*float64(payloadBytes)/1024
}

// Params is the full model parameter set.
type Params struct {
	// IOUS is the fixed generator↔server round-trip overhead (µs).
	IOUS float64
	// HopUS is NFP's distributed per-hop delivery latency.
	HopUS float64
	// SwitchHopUS is the centralized switch's per-hop latency.
	SwitchHopUS float64
	// SwitchQueue grows the switch hop cost with chain length n:
	// effective hop = SwitchHopUS × (1 + SwitchQueue×(n−1)).
	SwitchQueue float64
	// CopyHeaderUS / CopyFullPerKBUS are packet copy latencies.
	CopyHeaderUS    float64
	CopyFullPerKBUS float64
	// MergePerTailUS is the merge latency per extra collected tail:
	// merge cost = MergePerTailUS × (tails−1).
	MergePerTailUS float64
	// HopServiceUS is the per-delivery busy time of an NFP runtime.
	HopServiceUS float64
	// SwitchOpServiceUS is the per-forwarding busy time of the
	// centralized switch (its throughput bottleneck).
	SwitchOpServiceUS float64
	// MergeItemServiceUS is a merger instance's busy time per
	// collected packet copy.
	MergeItemServiceUS float64
	// ClassifyServiceUS is the classifier's busy time per packet.
	ClassifyServiceUS float64
	// RTCIOUS is the run-to-completion fixed I/O latency.
	RTCIOUS float64
	// RTCPerPacketUS is RTC's per-packet framework busy time.
	RTCPerPacketUS float64
	// NF maps NF type names to their costs.
	NF map[string]NFCost
}

// DefaultParams returns the Table 4 / Figure 7 calibration.
func DefaultParams() Params {
	return Params{
		IOUS:               16.3,
		HopUS:              3.0,
		SwitchHopUS:        2.6,
		SwitchQueue:        0.7,
		CopyHeaderUS:       1.0,
		CopyFullPerKBUS:    1.5,
		MergePerTailUS:     4.0,
		HopServiceUS:       0.035,
		SwitchOpServiceUS:  0.048,  // ONVM switch: ~10.4 Mpps at 1 NF, degrading with length
		MergeItemServiceUS: 0.0467, // 1 merger, 2 tails → 10.7 Mpps (§6.3.3)
		ClassifyServiceUS:  0.04,
		RTCIOUS:            11.25,
		RTCPerPacketUS:     0.005,
		NF:                 DefaultNFCosts(),
	}
}

// MacroParams returns the calibration for the real-world chain
// experiment (Figure 13). The paper's Fig 13 per-NF latencies are an
// order of magnitude above its Table 4 microbenchmark values (the
// chains run loaded, with deep batching); this set reproduces the
// reported totals: north-south 241→210 µs, west-east 220→141 µs.
func MacroParams() Params {
	p := DefaultParams()
	p.SwitchQueue = 0
	p.NF = map[string]NFCost{
		nfa.NFVPN:      {LatencyUS: 70, ServiceUS: 0.4},
		nfa.NFMonitor:  {LatencyUS: 55, ServiceUS: 0.09},
		nfa.NFFirewall: {LatencyUS: 50, ServiceUS: 0.057},
		nfa.NFLB:       {LatencyUS: 60, ServiceUS: 0.07},
		nfa.NFIDS:      {LatencyUS: 60, ServiceUS: 0.35},
	}
	return p
}

// DefaultNFCosts returns per-NF costs consistent with Figure 8's
// ordering (Forwarder < LB < Firewall < Monitor < VPN < IDS) and
// Table 4's firewall chains.
func DefaultNFCosts() map[string]NFCost {
	return map[string]NFCost{
		nfa.NFL3Fwd:    {LatencyUS: 1.5, ServiceUS: 0.03},
		nfa.NFLB:       {LatencyUS: 3.0, ServiceUS: 0.07},
		nfa.NFFirewall: {LatencyUS: 3.5, ServiceUS: 0.057},
		nfa.NFMonitor:  {LatencyUS: 5.0, ServiceUS: 0.09},
		nfa.NFVPN:      {LatencyUS: 55, PerKBUS: 45, ServiceUS: 0.4},
		nfa.NFIDS:      {LatencyUS: 48, PerKBUS: 35, ServiceUS: 0.35},
		nfa.NFNIDS:     {LatencyUS: 48, PerKBUS: 35, ServiceUS: 0.35},
		nfa.NFNAT:      {LatencyUS: 3.2, ServiceUS: 0.08},
		nfa.NFGateway:  {LatencyUS: 2.0, ServiceUS: 0.06},
		nfa.NFCaching:  {LatencyUS: 4.0, ServiceUS: 0.1},
	}
}

// Per-cycle costs of the Figure 9 synthetic NF, calibrated so that a
// sequential pair at 3000 cycles sits at ≈330 µs (Fig 9a) while the
// processing rate decays toward ≈1 Mpps (Fig 9b). The latency
// coefficient exceeds raw CPU-cycle time because the paper measures
// under load, where service time is amplified by queueing.
const (
	cycleLatencyUS = 0.05
	cycleServiceUS = 0.00033
)

// WithSyntheticCycles installs the Figure 9 synthetic NF: a firewall
// that burns the given busy-loop cycle count per packet on top of the
// firewall's base cost.
func (p Params) WithSyntheticCycles(cycles int) Params {
	nf := make(map[string]NFCost, len(p.NF))
	for k, v := range p.NF {
		nf[k] = v
	}
	base := nf[nfa.NFFirewall]
	nf[nfa.NFSynthetic] = NFCost{
		LatencyUS: base.LatencyUS + cycleLatencyUS*float64(cycles),
		ServiceUS: base.ServiceUS + cycleServiceUS*float64(cycles),
	}
	p.NF = nf
	return p
}

// cost resolves an NF's cost, defaulting to the firewall's.
func (p Params) cost(name string) NFCost {
	if c, ok := p.NF[name]; ok {
		return c
	}
	return p.NF[nfa.NFFirewall]
}

// payloadBytes returns the application bytes of a frame size.
func payloadBytes(frameSize int) int {
	pl := frameSize - packet.EthHeaderLen - packet.IPv4HeaderLen - packet.TCPHeaderLen
	if pl < 0 {
		return 0
	}
	return pl
}

// --- Latency ---

// LatencyGraph returns the NFP end-to-end latency (µs) of a service
// graph for the given frame size.
func (p Params) LatencyGraph(g graph.Node, frameSize int) float64 {
	return p.IOUS + p.nodeLatency(g, frameSize)
}

func (p Params) nodeLatency(n graph.Node, frameSize int) float64 {
	pl := payloadBytes(frameSize)
	switch v := n.(type) {
	case graph.NF:
		return p.HopUS + p.cost(v.Name).Latency(pl)
	case graph.Seq:
		total := 0.0
		for _, it := range v.Items {
			total += p.nodeLatency(it, frameSize)
		}
		return total
	case graph.Par:
		// Copies are taken up front; branches run simultaneously; the
		// merger collects one tail per branch.
		copies := 0.0
		for gi := 1; gi < len(v.NormGroups()); gi++ {
			if len(v.FullCopy) > gi && v.FullCopy[gi] {
				copies += p.CopyHeaderUS + p.CopyFullPerKBUS*float64(frameSize)/1024
			} else {
				copies += p.CopyHeaderUS
			}
		}
		max := 0.0
		for _, b := range v.Branches {
			if l := p.nodeLatency(b, frameSize); l > max {
				max = l
			}
		}
		tails := float64(len(v.Branches))
		return copies + max + p.MergePerTailUS*(tails-1)
	}
	panic(fmt.Sprintf("sim: unknown node type %T", n))
}

// LatencySeqNFP returns NFP's latency running a chain sequentially
// (its Figure 7 compatibility mode).
func (p Params) LatencySeqNFP(chain []string, frameSize int) float64 {
	items := make([]graph.Node, len(chain))
	for i, n := range chain {
		items[i] = graph.NF{Name: n, Instance: i}
	}
	if len(items) == 1 {
		return p.LatencyGraph(items[0], frameSize)
	}
	return p.LatencyGraph(graph.Seq{Items: items}, frameSize)
}

// LatencyONVM returns the centralized-switch baseline latency.
func (p Params) LatencyONVM(chain []string, frameSize int) float64 {
	n := float64(len(chain))
	hop := p.SwitchHopUS * (1 + p.SwitchQueue*(n-1))
	total := p.IOUS + (n+1)*hop
	pl := payloadBytes(frameSize)
	for _, name := range chain {
		total += p.cost(name).Latency(pl)
	}
	return total
}

// LatencyRTC returns the run-to-completion baseline latency.
func (p Params) LatencyRTC(chain []string, frameSize int) float64 {
	total := p.RTCIOUS
	pl := payloadBytes(frameSize)
	for _, name := range chain {
		total += p.cost(name).ServiceUS + p.cost(name).PerKBUS*float64(pl)/1024
	}
	return total
}

// --- Throughput (Mpps) ---

// lineMpps caps a rate at 10GbE line rate for the frame size.
func lineMpps(frameSize int) float64 {
	return stats.LineRatePPS(frameSize) / 1e6
}

// ThroughputGraph returns NFP's zero-loss rate for a service graph:
// the bottleneck of the classifier, every NF runtime (service + its
// forwarding work), and the merger pool, capped at line rate.
func (p Params) ThroughputGraph(g graph.Node, frameSize, mergers int) float64 {
	if mergers <= 0 {
		mergers = 2
	}
	bottleneck := 1 / p.ClassifyServiceUS // Mpps (µs⁻¹ = Mpps)
	graph.Walk(g, func(n graph.NF) {
		svc := p.cost(n.Name).ServiceUS +
			p.cost(n.Name).PerKBUS*float64(payloadBytes(frameSize))/1024 +
			p.HopServiceUS
		if r := 1 / svc; r < bottleneck {
			bottleneck = r
		}
	})
	// Merge items per packet = total branch tails over all joins.
	tails := 0
	var count func(graph.Node)
	count = func(n graph.Node) {
		switch v := n.(type) {
		case graph.Seq:
			for _, it := range v.Items {
				count(it)
			}
		case graph.Par:
			tails += len(v.Branches)
			for _, b := range v.Branches {
				count(b)
			}
		}
	}
	count(g)
	if tails > 0 {
		mergeRate := float64(mergers) / (p.MergeItemServiceUS * float64(tails))
		if mergeRate < bottleneck {
			bottleneck = mergeRate
		}
	}
	if lr := lineMpps(frameSize); lr < bottleneck {
		return lr
	}
	return bottleneck
}

// ThroughputSeqNFP returns NFP's rate for a sequential chain.
func (p Params) ThroughputSeqNFP(chain []string, frameSize int) float64 {
	items := make([]graph.Node, len(chain))
	for i, n := range chain {
		items[i] = graph.NF{Name: n, Instance: i}
	}
	return p.ThroughputGraph(graph.Seq{Items: items}, frameSize, 2)
}

// ThroughputONVM returns the centralized-switch baseline rate: the
// switch serializes hops+1 forwarding operations per packet.
func (p *Params) ThroughputONVM(chain []string, frameSize int) float64 {
	bottleneck := 1 / (p.SwitchOpServiceUS * float64(len(chain)+1))
	pl := payloadBytes(frameSize)
	for _, name := range chain {
		svc := p.cost(name).ServiceUS + p.cost(name).PerKBUS*float64(pl)/1024
		if r := 1 / svc; r < bottleneck {
			bottleneck = r
		}
	}
	if lr := lineMpps(frameSize); lr < bottleneck {
		return lr
	}
	return bottleneck
}

// ThroughputRTC returns the run-to-completion rate with the given
// number of chain replicas (cores).
func (p Params) ThroughputRTC(chain []string, frameSize, replicas int) float64 {
	if replicas <= 0 {
		replicas = 1
	}
	pl := payloadBytes(frameSize)
	perPkt := p.RTCPerPacketUS
	for _, name := range chain {
		perPkt += p.cost(name).ServiceUS + p.cost(name).PerKBUS*float64(pl)/1024
	}
	rate := float64(replicas) / perPkt
	if lr := lineMpps(frameSize); lr < rate {
		return lr
	}
	return rate
}
