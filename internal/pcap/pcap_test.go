package pcap

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
	"time"

	"nfp/internal/packet"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{
		packet.Build(packet.BuildSpec{
			SrcIP: netip.MustParseAddr("10.0.0.1"), DstIP: netip.MustParseAddr("10.0.0.2"),
			SrcPort: 1, DstPort: 2, Size: 64,
		}).Bytes(),
		packet.Build(packet.BuildSpec{
			SrcIP: netip.MustParseAddr("10.0.0.3"), DstIP: netip.MustParseAddr("10.0.0.4"),
			Proto: packet.ProtoUDP, SrcPort: 5, DstPort: 6, Size: 200,
		}).Bytes(),
	}
	base := time.Unix(1700000000, 123456000)
	for i, f := range frames {
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Second), f); err != nil {
			t.Fatal(err)
		}
	}
	if w.Packets() != 2 {
		t.Errorf("packets = %d", w.Packets())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d packets", len(got))
	}
	for i, p := range got {
		if !bytes.Equal(p.Data, frames[i]) {
			t.Errorf("packet %d bytes differ", i)
		}
		if p.OrigLen != uint32(len(frames[i])) {
			t.Errorf("packet %d origlen = %d", i, p.OrigLen)
		}
		want := base.Add(time.Duration(i) * time.Second)
		if p.Timestamp.Unix() != want.Unix() {
			t.Errorf("packet %d ts = %v", i, p.Timestamp)
		}
		// Microsecond precision survives.
		if p.Timestamp.Nanosecond() != 123456000 {
			t.Errorf("packet %d ns = %d", i, p.Timestamp.Nanosecond())
		}
		// The payload still parses as a packet.
		if err := packet.New(p.Data).Parse(); err != nil {
			t.Errorf("packet %d unparseable: %v", i, err)
		}
	}
}

func TestSnaplenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 60)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 300)
	for i := range big {
		big[i] = byte(i)
	}
	if err := w.WritePacket(time.Unix(1, 0), big); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(&buf)
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 60 || p.OrigLen != 300 {
		t.Errorf("caplen=%d origlen=%d", len(p.Data), p.OrigLen)
	}
	if !bytes.Equal(p.Data, big[:60]) {
		t.Error("truncated bytes differ")
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReaderErrors(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	bad := make([]byte, 24)
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Valid header but truncated record.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	w.WritePacket(time.Unix(1, 0), []byte{1, 2, 3, 4})
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("truncated record accepted")
	}
}
