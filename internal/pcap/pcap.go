// Package pcap reads and writes classic libpcap capture files
// (the tcpdump format), so NFP dataplane traffic can be captured and
// inspected with standard tooling — the debugging path the paper's
// correctness replay (§6.4) relies on.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

const (
	magicMicros  = 0xa1b2c3d4
	versionMajor = 2
	versionMinor = 4
	// LinkTypeEthernet is DLT_EN10MB.
	LinkTypeEthernet = 1

	fileHeaderLen   = 24
	packetHeaderLen = 16
)

// Writer emits a pcap stream. Create with NewWriter, which writes the
// file header immediately.
type Writer struct {
	w       io.Writer
	snaplen uint32
	packets uint64
}

// NewWriter writes the global header and returns a Writer. A zero
// snaplen defaults to 65535.
func NewWriter(w io.Writer, snaplen uint32) (*Writer, error) {
	if snaplen == 0 {
		snaplen = 65535
	}
	var h [fileHeaderLen]byte
	binary.LittleEndian.PutUint32(h[0:4], magicMicros)
	binary.LittleEndian.PutUint16(h[4:6], versionMajor)
	binary.LittleEndian.PutUint16(h[6:8], versionMinor)
	// thiszone (8:12) and sigfigs (12:16) stay zero.
	binary.LittleEndian.PutUint32(h[16:20], snaplen)
	binary.LittleEndian.PutUint32(h[20:24], LinkTypeEthernet)
	if _, err := w.Write(h[:]); err != nil {
		return nil, fmt.Errorf("pcap: %w", err)
	}
	return &Writer{w: w, snaplen: snaplen}, nil
}

// WritePacket appends one captured frame with the given timestamp.
// Frames longer than the snap length are truncated on disk with the
// original length preserved in the record header.
func (w *Writer) WritePacket(ts time.Time, data []byte) error {
	capLen := uint32(len(data))
	if capLen > w.snaplen {
		capLen = w.snaplen
	}
	var h [packetHeaderLen]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(h[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(h[8:12], capLen)
	binary.LittleEndian.PutUint32(h[12:16], uint32(len(data)))
	if _, err := w.w.Write(h[:]); err != nil {
		return fmt.Errorf("pcap: %w", err)
	}
	if _, err := w.w.Write(data[:capLen]); err != nil {
		return fmt.Errorf("pcap: %w", err)
	}
	w.packets++
	return nil
}

// Packets returns the number of frames written.
func (w *Writer) Packets() uint64 { return w.packets }

// Packet is one frame read back from a capture.
type Packet struct {
	Timestamp time.Time
	// OrigLen is the original wire length; len(Data) may be smaller if
	// the capture truncated at the snap length.
	OrigLen uint32
	Data    []byte
}

// Reader parses a pcap stream written by this package (or tcpdump with
// microsecond timestamps and Ethernet link type).
type Reader struct {
	r       io.Reader
	snaplen uint32
}

// NewReader validates the global header.
func NewReader(r io.Reader) (*Reader, error) {
	var h [fileHeaderLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return nil, fmt.Errorf("pcap: %w", err)
	}
	if binary.LittleEndian.Uint32(h[0:4]) != magicMicros {
		return nil, fmt.Errorf("pcap: bad magic %#x", binary.LittleEndian.Uint32(h[0:4]))
	}
	if lt := binary.LittleEndian.Uint32(h[20:24]); lt != LinkTypeEthernet {
		return nil, fmt.Errorf("pcap: link type %d, want Ethernet", lt)
	}
	return &Reader{r: r, snaplen: binary.LittleEndian.Uint32(h[16:20])}, nil
}

// Next returns the next packet, or io.EOF at end of capture.
func (r *Reader) Next() (Packet, error) {
	var h [packetHeaderLen]byte
	if _, err := io.ReadFull(r.r, h[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Packet{}, fmt.Errorf("pcap: truncated record header")
		}
		return Packet{}, err
	}
	capLen := binary.LittleEndian.Uint32(h[8:12])
	if capLen > r.snaplen {
		return Packet{}, fmt.Errorf("pcap: record length %d exceeds snaplen %d", capLen, r.snaplen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, fmt.Errorf("pcap: truncated record body")
	}
	return Packet{
		Timestamp: time.Unix(
			int64(binary.LittleEndian.Uint32(h[0:4])),
			int64(binary.LittleEndian.Uint32(h[4:8]))*1000),
		OrigLen: binary.LittleEndian.Uint32(h[12:16]),
		Data:    data,
	}, nil
}

// ReadAll drains the capture.
func (r *Reader) ReadAll() ([]Packet, error) {
	var out []Packet
	for {
		p, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
