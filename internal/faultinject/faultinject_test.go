package faultinject

import (
	"net/netip"
	"testing"
	"time"

	"nfp/internal/mempool"
	"nfp/internal/nf"
	"nfp/internal/packet"
)

func testPacket(t *testing.T) *packet.Packet {
	t.Helper()
	pkt := &packet.Packet{}
	pkt.Attach(make([]byte, 256), 0, nil)
	packet.BuildInto(pkt, packet.BuildSpec{
		SrcIP: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
		DstIP: netip.AddrFrom4([4]byte{10, 0, 0, 2}),
		Proto: packet.ProtoUDP, SrcPort: 1000, DstPort: 2000, Size: 64,
	})
	return pkt
}

func TestPanicNFSchedule(t *testing.T) {
	inner := nf.NewMonitor()
	p := NewPanicNF(inner, 2, 3)
	pkt := testPacket(t)

	if v := p.Process(pkt); v != nf.Pass {
		t.Fatalf("call 1: got %v, want pass", v)
	}
	for call := 2; call <= 3; call++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("call %d: expected panic", call)
				}
			}()
			p.Process(pkt)
		}()
	}
	if v := p.Process(pkt); v != nf.Pass {
		t.Fatalf("call 4: got %v, want pass", v)
	}
	if got := p.Panicked(); got != 2 {
		t.Fatalf("Panicked() = %d, want 2", got)
	}
	if got := p.Calls(); got != 4 {
		t.Fatalf("Calls() = %d, want 4", got)
	}
	if p.Name() != inner.Name() {
		t.Fatalf("Name() = %q, want %q", p.Name(), inner.Name())
	}
}

func TestStallNFGate(t *testing.T) {
	s := NewStallNF(nf.NewMonitor())
	pkt := testPacket(t)

	// Released: passes through.
	if v := s.Process(pkt); v != nf.Pass {
		t.Fatalf("released Process: got %v, want pass", v)
	}

	s.Stall()
	done := make(chan nf.Verdict, 1)
	go func() { done <- s.Process(pkt) }()

	// The call must park on the gate, not return.
	for s.Stalled() == 0 {
	}
	select {
	case <-done:
		t.Fatal("Process returned while stalled")
	default:
	}

	s.Release()
	if v := <-done; v != nf.Pass {
		t.Fatalf("post-release verdict: got %v, want pass", v)
	}
	if s.Stalled() != 0 {
		t.Fatalf("Stalled() = %d after release, want 0", s.Stalled())
	}
	// Release is idempotent; a released wrapper passes through again.
	s.Release()
	if v := s.Process(pkt); v != nf.Pass {
		t.Fatalf("re-released Process: got %v, want pass", v)
	}
}

func TestAllocScheduleFailsExactBatches(t *testing.T) {
	pool := mempool.New(8, 256)
	sched := NewAllocSchedule(2)
	pool.SetFaultHook(sched.Hook)

	p1 := pool.Get()
	if p1 == nil {
		t.Fatal("batch 1 should succeed")
	}
	if pool.Get() != nil {
		t.Fatal("batch 2 should fail by schedule")
	}
	p3 := pool.Get()
	if p3 == nil {
		t.Fatal("batch 3 should succeed")
	}
	if sched.Failed() != 1 || sched.Batches() != 3 {
		t.Fatalf("schedule saw batches=%d failed=%d, want 3/1", sched.Batches(), sched.Failed())
	}
	pool.SetFaultHook(nil)
	p1.Free()
	p3.Free()
	if pool.InUse() != 0 {
		t.Fatalf("pool leak: %d in use", pool.InUse())
	}
}

func TestPoolHog(t *testing.T) {
	pool := mempool.New(4, 256)
	hog := NewPoolHog(pool)
	if got := hog.Grab(10); got != 4 {
		t.Fatalf("Grab(10) = %d, want 4 (pool capacity)", got)
	}
	if pool.Get() != nil {
		t.Fatal("pool should be exhausted while hogged")
	}
	hog.ReleaseAll()
	if hog.Held() != 0 {
		t.Fatalf("Held() = %d after release", hog.Held())
	}
	if pool.InUse() != 0 {
		t.Fatalf("pool leak: %d in use", pool.InUse())
	}
}

func TestStallNFSetDelayInflatesServiceTime(t *testing.T) {
	s := NewStallNF(nf.NewMonitor())
	p := testPacket(t)
	start := time.Now()
	s.Process(p)
	if base := time.Since(start); base > 2*time.Millisecond {
		t.Fatalf("undelayed call took %v", base)
	}
	s.SetDelay(10 * time.Millisecond)
	if s.Delay() != 10*time.Millisecond {
		t.Fatalf("Delay() = %v", s.Delay())
	}
	start = time.Now()
	s.Process(p)
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("delayed call took %v, want >= 10ms", d)
	}
	s.SetDelay(0)
	start = time.Now()
	s.Process(p)
	if d := time.Since(start); d > 2*time.Millisecond {
		t.Fatalf("cleared delay still slow: %v", d)
	}
}
