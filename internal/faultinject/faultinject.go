// Package faultinject provides deterministic fault injection for the
// dataplane's overload and failure tests: NF wrappers that panic or
// stall on a precise schedule, and a mempool allocation-failure
// schedule. None of the injectors touch dataplane hot-path code — the
// wrappers implement nf.NF and are installed like any other instance,
// and the pool hook is the one nil-check mempool already pays.
//
// Determinism is the point: chaos tests must fail the same way every
// run, so every injector triggers on call counts (not timers or
// randomness) and exposes its state through atomics safe to read from
// the test goroutine.
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"

	"nfp/internal/mempool"
	"nfp/internal/nf"
	"nfp/internal/nfa"
	"nfp/internal/packet"
)

// PanicNF wraps an NF and panics on a scheduled set of Process calls
// (1-based call numbers, counted per packet — batched invocations count
// each packet). After the scheduled panics are spent the wrapper
// behaves exactly like the inner NF, so a supervisor restart that
// builds a fresh unwrapped instance and a wrapper that has exhausted
// its schedule are both "healthy again".
type PanicNF struct {
	Inner    nf.NF
	panicOn  map[uint64]bool
	calls    atomic.Uint64
	panicked atomic.Uint64
}

// NewPanicNF wraps inner so that the given 1-based Process call numbers
// panic.
func NewPanicNF(inner nf.NF, panicOnCalls ...uint64) *PanicNF {
	m := make(map[uint64]bool, len(panicOnCalls))
	for _, c := range panicOnCalls {
		m[c] = true
	}
	return &PanicNF{Inner: inner, panicOn: m}
}

// Name and Profile delegate to the inner NF so the wrapper slots into
// any graph position the inner NF could occupy (and so the supervisor
// restarts it from the inner NF's registry entry).
func (p *PanicNF) Name() string         { return p.Inner.Name() }
func (p *PanicNF) Profile() nfa.Profile { return p.Inner.Profile() }

// Process panics when the current call number is scheduled, otherwise
// delegates.
func (p *PanicNF) Process(pkt *packet.Packet) nf.Verdict {
	n := p.calls.Add(1)
	if p.panicOn[n] {
		p.panicked.Add(1)
		panic("faultinject: scheduled NF panic")
	}
	return p.Inner.Process(pkt)
}

// Calls returns how many packets the wrapper has seen.
func (p *PanicNF) Calls() uint64 { return p.calls.Load() }

// Panicked returns how many scheduled panics have fired.
func (p *PanicNF) Panicked() uint64 { return p.panicked.Load() }

// StallNF wraps an NF and, once armed, blocks every Process call until
// Release — freezing the runtime goroutine so its receive ring backs
// up. It models a wedged NF (infinite loop, lost lock) as opposed to a
// crashed one. SetDelay arms a milder mode: every call sleeps a fixed
// duration before delegating, inflating the NF's measured service time
// without wedging it — the knob diagnosis tests use to manufacture a
// bottleneck with a known ρ.
type StallNF struct {
	Inner nf.NF

	mu      sync.Mutex
	stalled bool
	gate    chan struct{}
	waiting atomic.Int64
	delayNS atomic.Int64
}

// NewStallNF wraps inner in the released (pass-through) state.
func NewStallNF(inner nf.NF) *StallNF {
	return &StallNF{Inner: inner, gate: make(chan struct{})}
}

func (s *StallNF) Name() string         { return s.Inner.Name() }
func (s *StallNF) Profile() nfa.Profile { return s.Inner.Profile() }

// Stall arms the wrapper: subsequent Process calls block until Release.
func (s *StallNF) Stall() {
	s.mu.Lock()
	if !s.stalled {
		s.stalled = true
		s.gate = make(chan struct{})
	}
	s.mu.Unlock()
}

// Release unblocks every stalled Process call and disarms the wrapper.
func (s *StallNF) Release() {
	s.mu.Lock()
	if s.stalled {
		s.stalled = false
		close(s.gate)
	}
	s.mu.Unlock()
}

// Stalled reports how many Process calls are currently blocked on the
// gate (at most one with a single-goroutine runtime, but the wrapper
// does not assume that).
func (s *StallNF) Stalled() int64 { return s.waiting.Load() }

// SetDelay makes every subsequent Process call sleep d before
// delegating — service-time inflation, independent of the Stall gate.
// SetDelay(0) restores pass-through timing.
func (s *StallNF) SetDelay(d time.Duration) { s.delayNS.Store(int64(d)) }

// Delay returns the current per-call delay.
func (s *StallNF) Delay() time.Duration { return time.Duration(s.delayNS.Load()) }

// Process blocks while the wrapper is armed, sleeps any configured
// delay, then delegates.
func (s *StallNF) Process(pkt *packet.Packet) nf.Verdict {
	s.mu.Lock()
	stalled, gate := s.stalled, s.gate
	s.mu.Unlock()
	if stalled {
		s.waiting.Add(1)
		<-gate
		s.waiting.Add(-1)
	}
	if d := s.delayNS.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return s.Inner.Process(pkt)
}

// AllocSchedule fails mempool allocations on a deterministic schedule:
// the 1-based batch numbers in failOn are rejected as pool-exhaustion
// events. Install with pool.SetFaultHook(sched.Hook) and clear with
// pool.SetFaultHook(nil).
type AllocSchedule struct {
	failOn map[uint64]bool
	batch  atomic.Uint64
	failed atomic.Uint64
}

// NewAllocSchedule builds a schedule failing the given 1-based
// allocation-batch numbers.
func NewAllocSchedule(failOnBatches ...uint64) *AllocSchedule {
	m := make(map[uint64]bool, len(failOnBatches))
	for _, b := range failOnBatches {
		m[b] = true
	}
	return &AllocSchedule{failOn: m}
}

// Hook is the mempool.SetFaultHook callback.
func (a *AllocSchedule) Hook(want int) bool {
	n := a.batch.Add(1)
	if a.failOn[n] {
		a.failed.Add(1)
		return false
	}
	return true
}

// Batches returns how many allocation batches the schedule has seen.
func (a *AllocSchedule) Batches() uint64 { return a.batch.Load() }

// Failed returns how many batches the schedule rejected.
func (a *AllocSchedule) Failed() uint64 { return a.failed.Load() }

// PoolHog holds buffers out of a pool to simulate exhaustion by a
// greedy co-tenant. Grab takes up to n buffers (returning how many it
// got); ReleaseAll frees every held buffer.
type PoolHog struct {
	pool *mempool.Pool
	held []*packet.Packet
}

// NewPoolHog creates a hog over pool.
func NewPoolHog(pool *mempool.Pool) *PoolHog { return &PoolHog{pool: pool} }

// Grab takes up to n buffers from the pool and reports how many it
// actually got (the pool may run out sooner).
func (h *PoolHog) Grab(n int) int {
	got := 0
	for i := 0; i < n; i++ {
		pkt := h.pool.Get()
		if pkt == nil {
			break
		}
		h.held = append(h.held, pkt)
		got++
	}
	return got
}

// Held returns how many buffers the hog currently holds.
func (h *PoolHog) Held() int { return len(h.held) }

// ReleaseAll frees every held buffer back to the pool.
func (h *PoolHog) ReleaseAll() {
	for _, pkt := range h.held {
		pkt.Free()
	}
	h.held = nil
}
