package ring

import (
	"testing"
	"time"
)

func TestWaiterSpinsThenParks(t *testing.T) {
	w := Waiter{SpinLimit: 4}
	for i := 0; i < 4; i++ {
		if w.Exhausted() {
			t.Fatalf("exhausted after %d of 4 spins", i)
		}
		if parked := w.Wait(); parked {
			t.Fatalf("wait %d parked inside the spin budget", i)
		}
	}
	if !w.Exhausted() {
		t.Fatal("not exhausted after the spin budget")
	}
	if parked := w.Wait(); !parked {
		t.Fatal("wait after exhaustion did not park")
	}
	yields, parks := w.Stats()
	if yields != 4 || parks != 1 {
		t.Fatalf("stats = (%d, %d), want (4, 1)", yields, parks)
	}
}

func TestWaiterZeroSpinLimitParksImmediately(t *testing.T) {
	w := Waiter{}
	if !w.Exhausted() {
		t.Fatal("zero spin limit must start exhausted")
	}
	if !w.Wait() {
		t.Fatal("first wait must park")
	}
}

func TestWaiterParkBackoffDoublesToCap(t *testing.T) {
	w := Waiter{SpinLimit: 0}
	prev := time.Duration(0)
	for i := 0; i < 20; i++ {
		w.Wait()
		if w.park < prev {
			t.Fatalf("park shrank: %v -> %v", prev, w.park)
		}
		if w.park > maxPark {
			t.Fatalf("park %v exceeds cap %v", w.park, maxPark)
		}
		if prev > 0 && prev < maxPark && w.park != 2*prev && w.park != maxPark {
			t.Fatalf("park did not double: %v -> %v", prev, w.park)
		}
		prev = w.park
	}
	if w.park != maxPark {
		t.Fatalf("park = %v after 20 waits, want cap %v", w.park, maxPark)
	}
}

func TestWaiterResetRearmsBudgetButKeepsStats(t *testing.T) {
	w := Waiter{SpinLimit: 2}
	w.Wait()
	w.Wait()
	w.Wait() // park
	w.Reset()
	if w.Exhausted() {
		t.Fatal("reset did not rearm the spin budget")
	}
	if parked := w.Wait(); parked {
		t.Fatal("post-reset wait parked despite fresh budget")
	}
	if w.park != 0 {
		t.Fatalf("reset did not clear park backoff: %v", w.park)
	}
	yields, parks := w.Stats()
	if yields != 3 || parks != 1 {
		t.Fatalf("stats = (%d, %d), want cumulative (3, 1)", yields, parks)
	}
}
