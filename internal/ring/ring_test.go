package ring

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"nfp/internal/packet"
)

func mkPkt(pid uint64) *packet.Packet {
	p := packet.New(make([]byte, 64))
	p.Meta.PID = pid
	return p
}

func TestCapacityRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
	} {
		if got := New(c.in).Cap(); got != c.want {
			t.Errorf("New(%d).Cap() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFIFOOrder(t *testing.T) {
	r := New(8)
	for i := uint64(0); i < 8; i++ {
		if !r.Enqueue(mkPkt(i)) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if r.Enqueue(mkPkt(99)) {
		t.Error("enqueue into full ring succeeded")
	}
	if r.Len() != 8 {
		t.Errorf("len = %d", r.Len())
	}
	for i := uint64(0); i < 8; i++ {
		p := r.Dequeue()
		if p == nil || p.Meta.PID != i {
			t.Fatalf("dequeue %d: got %v", i, p)
		}
	}
	if r.Dequeue() != nil {
		t.Error("dequeue from empty ring returned a packet")
	}
}

func TestDequeueBatch(t *testing.T) {
	r := New(16)
	for i := uint64(0); i < 5; i++ {
		r.Enqueue(mkPkt(i))
	}
	out := make([]*packet.Packet, 8)
	n := r.DequeueBatch(out)
	if n != 5 {
		t.Fatalf("batch = %d, want 5", n)
	}
	for i := 0; i < 5; i++ {
		if out[i].Meta.PID != uint64(i) {
			t.Errorf("batch order: out[%d].PID = %d", i, out[i].Meta.PID)
		}
	}
}

func TestWrapAround(t *testing.T) {
	r := New(4)
	// Cycle many times past the capacity to exercise index wrapping.
	for round := uint64(0); round < 100; round++ {
		for i := uint64(0); i < 3; i++ {
			if !r.Enqueue(mkPkt(round*3 + i)) {
				t.Fatalf("round %d enqueue failed", round)
			}
		}
		for i := uint64(0); i < 3; i++ {
			p := r.Dequeue()
			if p.Meta.PID != round*3+i {
				t.Fatalf("round %d: got pid %d want %d", round, p.Meta.PID, round*3+i)
			}
		}
	}
}

func TestSPSCConcurrent(t *testing.T) {
	r := New(64)
	const total = 20000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < total; {
			if r.Enqueue(mkPkt(i)) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	var got uint64
	for got < total {
		p := r.Dequeue()
		if p == nil {
			runtime.Gosched()
			continue
		}
		if p.Meta.PID != got {
			t.Fatalf("out of order: got %d want %d", p.Meta.PID, got)
		}
		got++
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Errorf("residual len = %d", r.Len())
	}
}

func TestMPSCConcurrentProducers(t *testing.T) {
	m := NewMPSC(128)
	const producers = 8
	const perProducer = 2000
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := uint64(0); i < perProducer; {
				if m.Enqueue(mkPkt(id*perProducer + i)) {
					i++
				} else {
					runtime.Gosched()
				}
			}
		}(uint64(w))
	}
	seen := make(map[uint64]bool, producers*perProducer)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		p := m.Dequeue()
		if p == nil {
			select {
			case <-done:
				if p = m.Dequeue(); p == nil {
					goto check
				}
			default:
				runtime.Gosched()
				continue
			}
		}
		if seen[p.Meta.PID] {
			t.Fatalf("duplicate pid %d", p.Meta.PID)
		}
		seen[p.Meta.PID] = true
	}
check:
	if len(seen) != producers*perProducer {
		t.Errorf("received %d packets, want %d", len(seen), producers*perProducer)
	}
}

func TestLenNeverExceedsCapProperty(t *testing.T) {
	// For any interleaving of enqueues/dequeues driven by a boolean
	// script, 0 <= Len() <= Cap() always holds.
	f := func(script []bool) bool {
		r := New(8)
		for _, enq := range script {
			if enq {
				r.Enqueue(mkPkt(0))
			} else {
				r.Dequeue()
			}
			if r.Len() < 0 || r.Len() > r.Cap() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
