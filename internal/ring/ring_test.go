package ring

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"nfp/internal/packet"
)

func mkPkt(pid uint64) *packet.Packet {
	p := packet.New(make([]byte, 64))
	p.Meta.PID = pid
	return p
}

func TestCapacityRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
	} {
		if got := New(c.in).Cap(); got != c.want {
			t.Errorf("New(%d).Cap() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFIFOOrder(t *testing.T) {
	r := New(8)
	for i := uint64(0); i < 8; i++ {
		if !r.Enqueue(mkPkt(i)) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if r.Enqueue(mkPkt(99)) {
		t.Error("enqueue into full ring succeeded")
	}
	if r.Len() != 8 {
		t.Errorf("len = %d", r.Len())
	}
	for i := uint64(0); i < 8; i++ {
		p := r.Dequeue()
		if p == nil || p.Meta.PID != i {
			t.Fatalf("dequeue %d: got %v", i, p)
		}
	}
	if r.Dequeue() != nil {
		t.Error("dequeue from empty ring returned a packet")
	}
}

func TestDequeueBatch(t *testing.T) {
	r := New(16)
	for i := uint64(0); i < 5; i++ {
		r.Enqueue(mkPkt(i))
	}
	out := make([]*packet.Packet, 8)
	n := r.DequeueBatch(out)
	if n != 5 {
		t.Fatalf("batch = %d, want 5", n)
	}
	for i := 0; i < 5; i++ {
		if out[i].Meta.PID != uint64(i) {
			t.Errorf("batch order: out[%d].PID = %d", i, out[i].Meta.PID)
		}
	}
}

func TestWrapAround(t *testing.T) {
	r := New(4)
	// Cycle many times past the capacity to exercise index wrapping.
	for round := uint64(0); round < 100; round++ {
		for i := uint64(0); i < 3; i++ {
			if !r.Enqueue(mkPkt(round*3 + i)) {
				t.Fatalf("round %d enqueue failed", round)
			}
		}
		for i := uint64(0); i < 3; i++ {
			p := r.Dequeue()
			if p.Meta.PID != round*3+i {
				t.Fatalf("round %d: got pid %d want %d", round, p.Meta.PID, round*3+i)
			}
		}
	}
}

func TestSPSCConcurrent(t *testing.T) {
	r := New(64)
	const total = 20000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < total; {
			if r.Enqueue(mkPkt(i)) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	var got uint64
	for got < total {
		p := r.Dequeue()
		if p == nil {
			runtime.Gosched()
			continue
		}
		if p.Meta.PID != got {
			t.Fatalf("out of order: got %d want %d", p.Meta.PID, got)
		}
		got++
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Errorf("residual len = %d", r.Len())
	}
}

func TestMPSCConcurrentProducers(t *testing.T) {
	m := NewMPSC(128)
	const producers = 8
	const perProducer = 2000
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := uint64(0); i < perProducer; {
				if m.Enqueue(mkPkt(id*perProducer + i)) {
					i++
				} else {
					runtime.Gosched()
				}
			}
		}(uint64(w))
	}
	seen := make(map[uint64]bool, producers*perProducer)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		p := m.Dequeue()
		if p == nil {
			select {
			case <-done:
				if p = m.Dequeue(); p == nil {
					goto check
				}
			default:
				runtime.Gosched()
				continue
			}
		}
		if seen[p.Meta.PID] {
			t.Fatalf("duplicate pid %d", p.Meta.PID)
		}
		seen[p.Meta.PID] = true
	}
check:
	if len(seen) != producers*perProducer {
		t.Errorf("received %d packets, want %d", len(seen), producers*perProducer)
	}
}

func mkPkts(start, n uint64) []*packet.Packet {
	out := make([]*packet.Packet, n)
	for i := range out {
		out[i] = mkPkt(start + uint64(i))
	}
	return out
}

// TestEnqueueBatchTable drives EnqueueBatch through the edge cases:
// empty bursts, bursts larger than the ring, partial acceptance when
// the ring is nearly full, and exact fits.
func TestEnqueueBatchTable(t *testing.T) {
	cases := []struct {
		name    string
		cap     int // requested capacity (rounded up to power of two)
		prefill int // packets enqueued before the burst
		burst   int
		wantAcc int
		wantLen int
	}{
		{"empty burst", 8, 0, 0, 0, 0},
		{"whole burst fits", 8, 0, 5, 5, 5},
		{"exact fit", 8, 0, 8, 8, 8},
		{"oversized burst truncated", 8, 0, 20, 8, 8},
		{"partial on nearly full", 8, 6, 5, 2, 8},
		{"zero on full", 8, 8, 3, 0, 8},
		{"tiny ring", 1, 0, 4, 2, 2}, // capacity 1 rounds to 2
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := New(c.cap)
			for i := 0; i < c.prefill; i++ {
				if !r.Enqueue(mkPkt(uint64(i))) {
					t.Fatalf("prefill %d failed", i)
				}
			}
			acc := r.EnqueueBatch(mkPkts(100, uint64(c.burst)))
			if acc != c.wantAcc {
				t.Errorf("accepted %d, want %d", acc, c.wantAcc)
			}
			if r.Len() != c.wantLen {
				t.Errorf("len = %d, want %d", r.Len(), c.wantLen)
			}
			// Partial acceptance must be the burst's prefix, in order,
			// behind the prefill.
			out := make([]*packet.Packet, r.Cap())
			n := r.DequeueBatch(out)
			if n != c.wantLen {
				t.Fatalf("drained %d, want %d", n, c.wantLen)
			}
			for i := 0; i < c.prefill; i++ {
				if out[i].Meta.PID != uint64(i) {
					t.Errorf("out[%d].PID = %d, want %d", i, out[i].Meta.PID, i)
				}
			}
			for i := 0; i < acc; i++ {
				want := uint64(100 + i)
				if out[c.prefill+i].Meta.PID != want {
					t.Errorf("out[%d].PID = %d, want %d", c.prefill+i, out[c.prefill+i].Meta.PID, want)
				}
			}
		})
	}
}

// TestDequeueBatchEdgeCases covers the consumer-side table: empty
// ring, undersized out slice, zero-length out, oversized out.
func TestDequeueBatchEdgeCases(t *testing.T) {
	r := New(8)
	if n := r.DequeueBatch(make([]*packet.Packet, 4)); n != 0 {
		t.Errorf("dequeue from empty = %d", n)
	}
	if n := r.EnqueueBatch(mkPkts(0, 6)); n != 6 {
		t.Fatalf("enqueue = %d", n)
	}
	if n := r.DequeueBatch(nil); n != 0 {
		t.Errorf("nil out drained %d", n)
	}
	out := make([]*packet.Packet, 4)
	if n := r.DequeueBatch(out); n != 4 {
		t.Fatalf("undersized out = %d, want 4", n)
	}
	for i, p := range out {
		if p.Meta.PID != uint64(i) {
			t.Errorf("out[%d].PID = %d", i, p.Meta.PID)
		}
	}
	big := make([]*packet.Packet, 16)
	if n := r.DequeueBatch(big); n != 2 {
		t.Fatalf("oversized out = %d, want 2", n)
	}
	if big[0].Meta.PID != 4 || big[1].Meta.PID != 5 {
		t.Errorf("tail PIDs = %d,%d", big[0].Meta.PID, big[1].Meta.PID)
	}
}

// TestBatchWrapAround cycles odd-sized bursts through a small ring so
// every batch straddles the index wrap repeatedly.
func TestBatchWrapAround(t *testing.T) {
	r := New(8)
	next := uint64(0) // next PID to enqueue
	want := uint64(0) // next PID expected out
	out := make([]*packet.Packet, 8)
	for round := 0; round < 200; round++ {
		burst := uint64(3 + round%5) // 3..7, ring cap 8: wraps constantly
		acc := r.EnqueueBatch(mkPkts(next, burst))
		next += uint64(acc)
		n := r.DequeueBatch(out[:burst])
		for i := 0; i < n; i++ {
			if out[i].Meta.PID != want {
				t.Fatalf("round %d: got pid %d want %d", round, out[i].Meta.PID, want)
			}
			want++
		}
	}
	// Drain the remainder.
	for {
		n := r.DequeueBatch(out)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			if out[i].Meta.PID != want {
				t.Fatalf("drain: got pid %d want %d", out[i].Meta.PID, want)
			}
			want++
		}
	}
	if want != next {
		t.Errorf("drained %d packets, enqueued %d", want, next)
	}
}

// TestBatchScalarEquivalenceProperty checks that a batch enqueue/
// dequeue script observes exactly the FIFO a scalar model predicts,
// for arbitrary interleavings and burst sizes.
func TestBatchScalarEquivalenceProperty(t *testing.T) {
	f := func(script []byte) bool {
		r := New(8)
		var model []uint64 // reference FIFO
		next := uint64(0)
		out := make([]*packet.Packet, 16)
		for _, op := range script {
			size := uint64(op % 16)
			if op&0x10 != 0 {
				acc := r.EnqueueBatch(mkPkts(next, size))
				if acc > int(size) {
					return false
				}
				for i := 0; i < acc; i++ {
					model = append(model, next+uint64(i))
				}
				next += uint64(acc)
			} else {
				n := r.DequeueBatch(out[:size])
				if n > len(model) {
					return false
				}
				for i := 0; i < n; i++ {
					if out[i].Meta.PID != model[i] {
						return false
					}
				}
				model = model[n:]
			}
			if r.Len() != len(model) || r.Len() > r.Cap() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSPSCBatchConcurrent stresses a batch producer against a batch
// consumer (run under -race in CI): FIFO order and no loss or
// duplication across partial bursts.
func TestSPSCBatchConcurrent(t *testing.T) {
	r := New(64)
	const total = 20000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := uint64(0)
		for next < total {
			burst := uint64(1 + next%32)
			if next+burst > total {
				burst = total - next
			}
			acc := r.EnqueueBatch(mkPkts(next, burst))
			next += uint64(acc)
			if acc == 0 {
				runtime.Gosched()
			}
		}
	}()
	out := make([]*packet.Packet, 32)
	var got uint64
	for got < total {
		n := r.DequeueBatch(out)
		if n == 0 {
			runtime.Gosched()
			continue
		}
		for i := 0; i < n; i++ {
			if out[i].Meta.PID != got {
				t.Fatalf("out of order: got %d want %d", out[i].Meta.PID, got)
			}
			got++
		}
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Errorf("residual len = %d", r.Len())
	}
}

// TestMPSCBatchConcurrentProducers checks the burst analog of the
// multi-producer path: concurrent EnqueueBatch callers must neither
// lose nor duplicate packets, and each producer's own sequence stays
// in order at the single consumer.
func TestMPSCBatchConcurrentProducers(t *testing.T) {
	m := NewMPSC(128)
	const producers = 8
	const perProducer = 4000
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			base := id * perProducer
			next := uint64(0)
			for next < perProducer {
				burst := uint64(1 + next%16)
				if next+burst > perProducer {
					burst = perProducer - next
				}
				acc := m.EnqueueBatch(mkPkts(base+next, burst))
				next += uint64(acc)
				if acc == 0 {
					runtime.Gosched()
				}
			}
		}(uint64(w))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	seen := make(map[uint64]bool, producers*perProducer)
	lastOf := make(map[uint64]uint64, producers) // producer → last seq seen + 1
	out := make([]*packet.Packet, 32)
	for {
		n := m.DequeueBatch(out)
		if n == 0 {
			select {
			case <-done:
				if n = m.DequeueBatch(out); n == 0 {
					goto check
				}
			default:
				runtime.Gosched()
				continue
			}
		}
		for i := 0; i < n; i++ {
			pid := out[i].Meta.PID
			if seen[pid] {
				t.Fatalf("duplicate pid %d", pid)
			}
			seen[pid] = true
			prod, seq := pid/perProducer, pid%perProducer
			if seq != lastOf[prod] {
				t.Fatalf("producer %d out of order: seq %d want %d", prod, seq, lastOf[prod])
			}
			lastOf[prod] = seq + 1
		}
	}
check:
	if len(seen) != producers*perProducer {
		t.Errorf("received %d packets, want %d", len(seen), producers*perProducer)
	}
}

func TestLenNeverExceedsCapProperty(t *testing.T) {
	// For any interleaving of enqueues/dequeues driven by a boolean
	// script, 0 <= Len() <= Cap() always holds.
	f := func(script []bool) bool {
		r := New(8)
		for _, enq := range script {
			if enq {
				r.Enqueue(mkPkt(0))
			} else {
				r.Dequeue()
			}
			if r.Len() < 0 || r.Len() > r.Cap() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
