package ring

import (
	"runtime"
	"time"
)

// Waiter paces a retry loop on a full (or empty) ring: a bounded burst
// of Gosched yields — cheap, keeps the cache warm, resolves the common
// transient-full case — followed by exponentially growing sleeps once
// the spin budget is exhausted. A producer stuck behind a stalled
// consumer therefore parks instead of pegging a core, while the
// fast path (ring drains within a few yields) never sleeps.
//
// A Waiter is single-goroutine scratch state; create one per retry
// episode (the zero value with a SpinLimit is ready to use) and Reset
// it whenever the loop makes progress.
type Waiter struct {
	// SpinLimit is how many Gosched yields to burn before parking.
	// Zero parks immediately on the first Wait.
	SpinLimit int

	spins  int
	park   time.Duration
	yields uint64
	parks  uint64
}

// Park growth bounds: the first park is short enough not to hurt a
// momentarily slow consumer; the cap bounds wake-up latency after a
// long stall (and how long Stop-drain invariants take to observe).
const (
	minPark = 5 * time.Microsecond
	maxPark = time.Millisecond
)

// Wait blocks the caller one pacing step and reports whether it parked
// (slept) rather than yielded.
func (w *Waiter) Wait() bool {
	if w.spins < w.SpinLimit {
		w.spins++
		w.yields++
		runtime.Gosched()
		return false
	}
	if w.park == 0 {
		w.park = minPark
	} else if w.park < maxPark {
		w.park *= 2
		if w.park > maxPark {
			w.park = maxPark
		}
	}
	w.parks++
	time.Sleep(w.park)
	return true
}

// Exhausted reports whether the spin budget is used up — the point
// where a shedding policy gives up instead of parking.
func (w *Waiter) Exhausted() bool { return w.spins >= w.SpinLimit }

// Reset rearms the spin budget and park backoff after progress.
func (w *Waiter) Reset() { w.spins, w.park = 0, 0 }

// Stats returns the cumulative (yields, parks) this waiter performed;
// Reset does not clear them.
func (w *Waiter) Stats() (yields, parks uint64) { return w.yields, w.parks }
