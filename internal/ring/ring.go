// Package ring implements the per-NF receive/transmit ring buffers of
// the NFP infrastructure (§5, Figure 3): bounded single-producer
// single-consumer queues of packet references, lock-free, cache-friendly.
//
// "An NF simply writes packet references into the receive ring buffer of
// the other NF to realize packet delivery" — Enqueue/Dequeue move only
// pointers, never packet bytes.
//
// The batch variants (EnqueueBatch/DequeueBatch) are the DPDK-style
// burst fast path: one producer/consumer index update per burst instead
// of per packet, so the synchronization cost amortizes across the whole
// burst. The scalar Enqueue/Dequeue are thin wrappers over the batch
// path — there is exactly one drain implementation.
package ring

import (
	"runtime"
	"sync/atomic"

	"nfp/internal/packet"
)

// Ring is a lock-free SPSC ring of packet references. Exactly one
// goroutine may call Enqueue and exactly one may call Dequeue. Multiple
// producers must serialize externally (the NFP graph guarantees a single
// upstream writer per receive ring; fan-in points use an MPSC wrapper).
type Ring struct {
	mask uint64
	buf  []atomic.Pointer[packet.Packet]

	_    [56]byte // pad head/tail onto separate cache lines
	head atomic.Uint64
	_    [56]byte
	tail atomic.Uint64
}

// New creates a ring with the given capacity, rounded up to a power of
// two (minimum 2).
func New(capacity int) *Ring {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), buf: make([]atomic.Pointer[packet.Packet], n)}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the approximate number of queued references.
func (r *Ring) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Enqueue appends a packet reference. It returns false when the ring is
// full (the caller decides whether to drop or retry; NFP runtimes retry,
// modeling backpressure toward the upstream ring).
func (r *Ring) Enqueue(p *packet.Packet) bool {
	var one [1]*packet.Packet
	one[0] = p
	return r.EnqueueBatch(one[:]) == 1
}

// EnqueueBatch appends up to len(pkts) references in FIFO order and
// returns how many were accepted — a partial count when the ring fills
// mid-burst (the caller retries the tail, as with a rejected Enqueue).
// All accepted slots are published with a single release store of the
// producer index, so consumers see either none or all of the burst's
// prefix.
func (r *Ring) EnqueueBatch(pkts []*packet.Packet) int {
	tail := r.tail.Load()
	free := uint64(len(r.buf)) - (tail - r.head.Load())
	n := uint64(len(pkts))
	if n > free {
		n = free
	}
	if n == 0 {
		return 0
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(tail+i)&r.mask].Store(pkts[i])
	}
	r.tail.Store(tail + n)
	return int(n)
}

// Dequeue removes and returns the oldest packet reference, or nil if
// the ring is empty.
func (r *Ring) Dequeue() *packet.Packet {
	var one [1]*packet.Packet
	if r.DequeueBatch(one[:]) == 0 {
		return nil
	}
	return one[0]
}

// DequeueBatch fills out with up to len(out) references in FIFO order
// and returns the count, modeling DPDK burst receive. The consumed
// slots are released with a single store of the consumer index, so the
// producer regains the whole burst's capacity at once.
func (r *Ring) DequeueBatch(out []*packet.Packet) int {
	head := r.head.Load()
	avail := r.tail.Load() - head
	n := uint64(len(out))
	if n > avail {
		n = avail
	}
	if n == 0 {
		return 0
	}
	for i := uint64(0); i < n; i++ {
		slot := &r.buf[(head+i)&r.mask]
		out[i] = slot.Load()
		slot.Store(nil)
	}
	r.head.Store(head + n)
	return int(n)
}

// MPSC serializes multiple producers in front of a Ring. NFP uses it at
// fan-in points: several parallel NF runtimes deliver into the merger
// agent's single receive ring.
type MPSC struct {
	ring *Ring
	lock atomic.Uint32 // spinlock: producers are short critical sections
}

// NewMPSC wraps a fresh ring of the given capacity.
func NewMPSC(capacity int) *MPSC {
	return &MPSC{ring: New(capacity)}
}

// Enqueue appends a reference from any goroutine.
func (m *MPSC) Enqueue(p *packet.Packet) bool {
	var one [1]*packet.Packet
	one[0] = p
	return m.EnqueueBatch(one[:]) == 1
}

// EnqueueBatch appends up to len(pkts) references from any goroutine
// and returns the accepted count. The whole burst rides on one lock
// acquisition and one producer-index store — the burst analog of DPDK's
// single-CAS multi-producer enqueue.
func (m *MPSC) EnqueueBatch(pkts []*packet.Packet) int {
	for !m.lock.CompareAndSwap(0, 1) {
		runtime.Gosched() // single-core friendly: let the holder run
	}
	n := m.ring.EnqueueBatch(pkts)
	m.lock.Store(0)
	return n
}

// Dequeue removes the oldest reference; single consumer only.
func (m *MPSC) Dequeue() *packet.Packet { return m.ring.Dequeue() }

// DequeueBatch fills out with up to len(out) references; single
// consumer only.
func (m *MPSC) DequeueBatch(out []*packet.Packet) int { return m.ring.DequeueBatch(out) }

// Len returns the approximate queue length.
func (m *MPSC) Len() int { return m.ring.Len() }

// Cap returns the ring capacity.
func (m *MPSC) Cap() int { return m.ring.Cap() }
