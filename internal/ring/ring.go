// Package ring implements the per-NF receive/transmit ring buffers of
// the NFP infrastructure (§5, Figure 3): bounded single-producer
// single-consumer queues of packet references, lock-free, cache-friendly.
//
// "An NF simply writes packet references into the receive ring buffer of
// the other NF to realize packet delivery" — Enqueue/Dequeue move only
// pointers, never packet bytes.
package ring

import (
	"runtime"
	"sync/atomic"

	"nfp/internal/packet"
)

// Ring is a lock-free SPSC ring of packet references. Exactly one
// goroutine may call Enqueue and exactly one may call Dequeue. Multiple
// producers must serialize externally (the NFP graph guarantees a single
// upstream writer per receive ring; fan-in points use an MPSC wrapper).
type Ring struct {
	mask uint64
	buf  []atomic.Pointer[packet.Packet]

	_    [56]byte // pad head/tail onto separate cache lines
	head atomic.Uint64
	_    [56]byte
	tail atomic.Uint64
}

// New creates a ring with the given capacity, rounded up to a power of
// two (minimum 2).
func New(capacity int) *Ring {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), buf: make([]atomic.Pointer[packet.Packet], n)}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the approximate number of queued references.
func (r *Ring) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Enqueue appends a packet reference. It returns false when the ring is
// full (the caller decides whether to drop or retry; NFP runtimes retry,
// modeling backpressure toward the upstream ring).
func (r *Ring) Enqueue(p *packet.Packet) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[tail&r.mask].Store(p)
	r.tail.Store(tail + 1)
	return true
}

// Dequeue removes and returns the oldest packet reference, or nil if
// the ring is empty.
func (r *Ring) Dequeue() *packet.Packet {
	head := r.head.Load()
	if head == r.tail.Load() {
		return nil
	}
	p := r.buf[head&r.mask].Load()
	r.buf[head&r.mask].Store(nil)
	r.head.Store(head + 1)
	return p
}

// DequeueBatch fills out with up to len(out) references and returns the
// count, modeling DPDK burst receive.
func (r *Ring) DequeueBatch(out []*packet.Packet) int {
	n := 0
	for n < len(out) {
		p := r.Dequeue()
		if p == nil {
			break
		}
		out[n] = p
		n++
	}
	return n
}

// MPSC serializes multiple producers in front of a Ring. NFP uses it at
// fan-in points: several parallel NF runtimes deliver into the merger
// agent's single receive ring.
type MPSC struct {
	ring *Ring
	lock atomic.Uint32 // spinlock: producers are short critical sections
}

// NewMPSC wraps a fresh ring of the given capacity.
func NewMPSC(capacity int) *MPSC {
	return &MPSC{ring: New(capacity)}
}

// Enqueue appends a reference from any goroutine.
func (m *MPSC) Enqueue(p *packet.Packet) bool {
	for !m.lock.CompareAndSwap(0, 1) {
		runtime.Gosched() // single-core friendly: let the holder run
	}
	ok := m.ring.Enqueue(p)
	m.lock.Store(0)
	return ok
}

// Dequeue removes the oldest reference; single consumer only.
func (m *MPSC) Dequeue() *packet.Packet { return m.ring.Dequeue() }

// Len returns the approximate queue length.
func (m *MPSC) Len() int { return m.ring.Len() }

// Cap returns the ring capacity.
func (m *MPSC) Cap() int { return m.ring.Cap() }
