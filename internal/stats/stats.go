// Package stats provides the measurement helpers of the evaluation:
// latency recording with percentiles, throughput metering, and the
// resource-overhead model of §6.3.1.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Latency accumulates latency samples (nanoseconds). It is safe for
// concurrent use: recorders and readers may interleave freely (the
// dataplane's output-drain goroutine records while the main goroutine
// reads). For unsampled hot-path recording with bounded memory, prefer
// telemetry.Histogram — this recorder keeps every sample for exact
// percentiles.
type Latency struct {
	mu      sync.Mutex
	samples []int64
	sorted  bool
}

// NewLatency creates a recorder with capacity hint n.
func NewLatency(n int) *Latency {
	return &Latency{samples: make([]int64, 0, n)}
}

// Record adds one sample.
func (l *Latency) Record(ns int64) {
	l.mu.Lock()
	l.samples = append(l.samples, ns)
	l.sorted = false
	l.mu.Unlock()
}

// Count returns the number of samples.
func (l *Latency) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// Mean returns the average sample in nanoseconds.
func (l *Latency) Mean() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range l.samples {
		sum += float64(s)
	}
	return sum / float64(len(l.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) in nanoseconds.
// The samples are sorted in place under the lock (recording order is
// not part of the contract), and the sort is reused until the next
// Record.
func (l *Latency) Percentile(p float64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
	idx := int(math.Ceil(p/100*float64(len(l.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return l.samples[idx]
}

// Median returns the 50th percentile.
func (l *Latency) Median() int64 { return l.Percentile(50) }

// MeanMicros returns the mean in microseconds — the paper's unit.
func (l *Latency) MeanMicros() float64 { return l.Mean() / 1e3 }

func (l *Latency) String() string {
	return fmt.Sprintf("n=%d mean=%.1fµs p50=%.1fµs p99=%.1fµs",
		l.Count(), l.MeanMicros(),
		float64(l.Median())/1e3, float64(l.Percentile(99))/1e3)
}

// Throughput measures a packet rate over a wall-clock window.
type Throughput struct {
	packets uint64
	bytes   uint64
	start   time.Time
	end     time.Time
}

// StartNow begins the measurement window.
func (t *Throughput) StartNow() { t.start = time.Now() }

// StopNow ends the measurement window.
func (t *Throughput) StopNow() { t.end = time.Now() }

// Add accumulates n packets totalling b bytes.
func (t *Throughput) Add(n, b uint64) {
	t.packets += n
	t.bytes += b
}

// Elapsed returns the window length.
func (t *Throughput) Elapsed() time.Duration {
	end := t.end
	if end.IsZero() {
		end = time.Now()
	}
	return end.Sub(t.start)
}

// PPS returns packets per second.
func (t *Throughput) PPS() float64 {
	el := t.Elapsed().Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.packets) / el
}

// Mpps returns millions of packets per second — the paper's unit.
func (t *Throughput) Mpps() float64 { return t.PPS() / 1e6 }

// Gbps returns the payload bit rate in gigabits per second.
func (t *Throughput) Gbps() float64 {
	el := t.Elapsed().Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.bytes) * 8 / el / 1e9
}

// ResourceOverhead evaluates the §6.3.1 model: with Header-Only
// Copying, a parallelism degree of d costs 64·(d−1) extra bytes per
// packet of size s, i.e. ro = 64×(d−1)/s.
func ResourceOverhead(pktSize, degree int) float64 {
	if pktSize <= 0 || degree <= 1 {
		return 0
	}
	return 64 * float64(degree-1) / float64(pktSize)
}

// MeanResourceOverhead weighs ResourceOverhead by a packet-size
// distribution's mean, reproducing the paper's ro = 0.088×(d−1) for
// the datacenter mixture (mean ≈724 B).
func MeanResourceOverhead(meanPktSize float64, degree int) float64 {
	if meanPktSize <= 0 || degree <= 1 {
		return 0
	}
	return 64 * float64(degree-1) / meanPktSize
}

// LineRatePPS returns the 10GbE line rate in packets per second for a
// frame size (adding the 20B inter-frame gap + preamble the paper's
// "Line Speed" series includes): 14.88 Mpps at 64 B.
func LineRatePPS(frameSize int) float64 {
	if frameSize < 64 {
		frameSize = 64
	}
	return 10e9 / (float64(frameSize+20) * 8)
}
