package stats

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestLatencyBasics(t *testing.T) {
	l := NewLatency(10)
	for _, s := range []int64{1000, 2000, 3000, 4000, 5000} {
		l.Record(s)
	}
	if l.Count() != 5 {
		t.Errorf("count = %d", l.Count())
	}
	if l.Mean() != 3000 {
		t.Errorf("mean = %.1f", l.Mean())
	}
	if l.Median() != 3000 {
		t.Errorf("median = %d", l.Median())
	}
	if l.Percentile(100) != 5000 || l.Percentile(1) != 1000 {
		t.Errorf("percentiles wrong")
	}
	if l.MeanMicros() != 3 {
		t.Errorf("mean µs = %.1f", l.MeanMicros())
	}
	if l.String() == "" {
		t.Error("empty String")
	}
}

func TestLatencyEmptyAndUnsorted(t *testing.T) {
	l := NewLatency(0)
	if l.Mean() != 0 || l.Percentile(50) != 0 {
		t.Error("empty recorder not zero")
	}
	// Recording after a percentile query must re-sort.
	l.Record(5000)
	if l.Percentile(50) != 5000 {
		t.Error("p50 wrong")
	}
	l.Record(1000)
	if l.Percentile(50) != 1000 {
		t.Errorf("p50 after insert = %d", l.Percentile(50))
	}
}

func TestThroughput(t *testing.T) {
	var th Throughput
	th.StartNow()
	th.Add(1000, 64000)
	time.Sleep(10 * time.Millisecond)
	th.StopNow()
	pps := th.PPS()
	if pps <= 0 || pps > 1000/0.010*1.5 {
		t.Errorf("pps = %.0f", pps)
	}
	if th.Mpps() != pps/1e6 {
		t.Error("Mpps inconsistent")
	}
	if th.Gbps() <= 0 {
		t.Error("Gbps = 0")
	}
	var idle Throughput
	idle.StartNow()
	idle.StopNow()
	if idle.PPS() != 0 && idle.Elapsed() > 0 {
		// Zero packets: rate must be 0.
		t.Errorf("idle pps = %.1f", idle.PPS())
	}
}

func TestResourceOverheadModel(t *testing.T) {
	// §6.3.1: ro = 64×(d−1)/s.
	cases := []struct {
		size, degree int
		want         float64
	}{
		{64, 2, 1.0},
		{1500, 2, 64.0 / 1500},
		{724, 2, 64.0 / 724},
		{724, 5, 4 * 64.0 / 724},
		{724, 1, 0},
		{0, 2, 0},
	}
	for _, c := range cases {
		if got := ResourceOverhead(c.size, c.degree); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("ro(%d,%d) = %.4f, want %.4f", c.size, c.degree, got, c.want)
		}
	}
	// The paper's datacenter figure: ro ≈ 0.088×(d−1) at mean 724 B.
	got := MeanResourceOverhead(724, 2)
	if math.Abs(got-0.0884) > 0.001 {
		t.Errorf("mean ro = %.4f, want ≈0.088", got)
	}
	if MeanResourceOverhead(724, 5) <= got {
		t.Error("overhead must grow with degree")
	}
	if MeanResourceOverhead(0, 2) != 0 || MeanResourceOverhead(724, 1) != 0 {
		t.Error("degenerate cases not zero")
	}
}

func TestLineRate(t *testing.T) {
	// 64B at 10GbE: 14.88 Mpps; 1500B: 0.822 Mpps.
	if got := LineRatePPS(64) / 1e6; math.Abs(got-14.88) > 0.01 {
		t.Errorf("line rate 64B = %.2f Mpps", got)
	}
	if got := LineRatePPS(1500) / 1e6; math.Abs(got-0.8224) > 0.001 {
		t.Errorf("line rate 1500B = %.4f Mpps", got)
	}
	if LineRatePPS(10) != LineRatePPS(64) {
		t.Error("sub-minimum frames not clamped")
	}
}

// TestLatencyConcurrent interleaves recorders with percentile readers —
// the dataplane's drain goroutine records while the main goroutine
// reads. Run under -race this is the regression test for the unguarded
// samples slice.
func TestLatencyConcurrent(t *testing.T) {
	l := NewLatency(0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= 5000; i++ {
				l.Record(i)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = l.Percentile(99)
			_ = l.Mean()
			_ = l.Count()
		}
	}()
	wg.Wait()
	<-done
	if l.Count() != 4*5000 {
		t.Errorf("count = %d, want %d", l.Count(), 4*5000)
	}
	if l.Percentile(100) != 5000 {
		t.Errorf("p100 = %d, want 5000", l.Percentile(100))
	}
}
