// Package graph defines NFP's service graph representation: the output
// of the orchestrator's compilation (§4.4) and the input to both the
// dataplane (§5) and the analytic simulator.
//
// A service graph is a composition of three node kinds:
//
//   - NF: one network function instance,
//   - Seq: sequential composition (a traditional chain segment),
//   - Par: parallel composition with copy groups and merging
//     operations (the join point where a merger reconciles packet
//     copies).
//
// The algebra expresses every structure in the paper: Figure 1(b) is
// Seq(VPN, Par(Monitor, FW), LB); Figure 14's six 4-NF structures are
// Seq(a,b,c,d), Par(a,b,c,d), Seq(a, Par(b,c,d)), Seq(a, Par(b,c), d),
// Par(a, Seq(b,c,d)) and Seq(Par(a,b), Par(c,d)); Figure 2's trees are
// Seq nodes nested inside Par branches.
package graph

import (
	"fmt"
	"strings"

	"nfp/internal/packet"
)

// Node is a service graph node: NF, Seq or Par.
type Node interface {
	fmt.Stringer
	isNode()
}

// NF is a single network function instance. Name is the NF type (an
// nfa catalog name); Instance distinguishes multiple instances of the
// same type in one graph.
type NF struct {
	Name     string
	Instance int
}

func (NF) isNode() {}

func (n NF) String() string {
	if n.Instance == 0 {
		return n.Name
	}
	return fmt.Sprintf("%s#%d", n.Name, n.Instance)
}

// Seq is sequential composition: packets traverse Items in order.
type Seq struct {
	Items []Node
}

func (Seq) isNode() {}

func (s Seq) String() string {
	parts := make([]string, len(s.Items))
	for i, it := range s.Items {
		parts[i] = it.String()
	}
	return "(" + strings.Join(parts, " -> ") + ")"
}

// Par is parallel composition: every branch processes the packet
// logically simultaneously, and a merger reconciles the results.
type Par struct {
	// Branches are the parallel sub-graphs.
	Branches []Node

	// Groups partitions branch indices into copy groups. Branches in
	// Groups[0] share the incoming packet (no copy); each further
	// group receives its own packet copy. A nil Groups means all
	// branches share the original (pure no-copy parallelism).
	Groups [][]int

	// FullCopy marks copy groups (by group index) whose copies must be
	// full packet copies rather than Header-Only copies because a
	// branch NF touches the payload (§4.2 OP#2).
	FullCopy []bool

	// Ops are the merging operations applied at the join (§5.3),
	// in application order.
	Ops []MergeOp
}

func (Par) isNode() {}

func (p Par) String() string {
	parts := make([]string, len(p.Branches))
	for i, b := range p.Branches {
		parts[i] = b.String()
	}
	return "[" + strings.Join(parts, " || ") + "]"
}

// NormGroups returns the effective copy groups: Groups if set,
// otherwise a single group containing every branch.
func (p Par) NormGroups() [][]int {
	if len(p.Groups) > 0 {
		return p.Groups
	}
	all := make([]int, len(p.Branches))
	for i := range all {
		all[i] = i
	}
	return [][]int{all}
}

// CopiesPerPacket returns how many packet copies this join creates per
// packet (number of copy groups beyond the first).
func (p Par) CopiesPerPacket() int {
	g := len(p.NormGroups())
	if g == 0 {
		return 0
	}
	return g - 1
}

// MergeOpKind discriminates the three merging operations of §5.3.
type MergeOpKind uint8

const (
	// OpModify overwrites a field of the base copy with the same field
	// of another version: modify(v1.A, v2.A).
	OpModify MergeOpKind = iota
	// OpAdd splices a field of another version into the base copy
	// before/after an anchor field: add(v2.B, after, v1.A).
	OpAdd
	// OpRemove deletes a field from the base copy: remove(v1.C).
	OpRemove
)

func (k MergeOpKind) String() string {
	switch k {
	case OpModify:
		return "modify"
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	}
	return fmt.Sprintf("mo(%d)", uint8(k))
}

// MergeOp is one merging operation. The base copy is always version 1
// of the join's incoming packet ("The original packet copy is tagged as
// version v1 ... MOs record how to merge the rest of packet copies into
// v1").
type MergeOp struct {
	Kind MergeOpKind
	// SrcVersion is the packet version supplying bytes (Modify, Add).
	SrcVersion uint8
	// SrcField is the field read from SrcVersion (Modify, Add).
	SrcField packet.Field
	// DstField is the field of the base copy that is overwritten
	// (Modify), used as the splice anchor (Add), or removed (Remove).
	DstField packet.Field
	// After places an added field after the anchor instead of before.
	After bool
}

func (o MergeOp) String() string {
	switch o.Kind {
	case OpModify:
		return fmt.Sprintf("modify(v1.%s, v%d.%s)", o.DstField, o.SrcVersion, o.SrcField)
	case OpAdd:
		pos := "before"
		if o.After {
			pos = "after"
		}
		return fmt.Sprintf("add(v%d.%s, %s, v1.%s)", o.SrcVersion, o.SrcField, pos, o.DstField)
	case OpRemove:
		return fmt.Sprintf("remove(v1.%s)", o.DstField)
	}
	return "mo(?)"
}
