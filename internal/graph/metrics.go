package graph

import (
	"fmt"
	"sort"
	"strings"
)

// EquivalentLength returns the equivalent chain length of the graph:
// the longest NF path a packet traverses. The paper uses it to predict
// the latency optimization effect ("a better latency optimization
// effect for graphs with shorter equivalent chain length", §6.2.4).
func EquivalentLength(n Node) int {
	switch v := n.(type) {
	case NF:
		return 1
	case Seq:
		total := 0
		for _, it := range v.Items {
			total += EquivalentLength(it)
		}
		return total
	case Par:
		max := 0
		for _, b := range v.Branches {
			if l := EquivalentLength(b); l > max {
				max = l
			}
		}
		return max
	case nil:
		return 0
	}
	panic(fmt.Sprintf("graph: unknown node type %T", n))
}

// NFCount returns the number of NF instances in the graph.
func NFCount(n Node) int {
	count := 0
	Walk(n, func(nf NF) { count++ })
	return count
}

// NFs returns every NF instance in deterministic traversal order.
func NFs(n Node) []NF {
	var out []NF
	Walk(n, func(nf NF) { out = append(out, nf) })
	return out
}

// Walk visits every NF node in traversal order (Seq items in order,
// Par branches in index order).
func Walk(n Node, visit func(NF)) {
	switch v := n.(type) {
	case NF:
		visit(v)
	case Seq:
		for _, it := range v.Items {
			Walk(it, visit)
		}
	case Par:
		for _, b := range v.Branches {
			Walk(b, visit)
		}
	case nil:
	default:
		panic(fmt.Sprintf("graph: unknown node type %T", n))
	}
}

// TotalCopies returns the total number of packet copies created per
// packet across all joins of the graph — the resource-overhead driver
// of §6.3.1.
func TotalCopies(n Node) int {
	switch v := n.(type) {
	case NF, nil:
		return 0
	case Seq:
		total := 0
		for _, it := range v.Items {
			total += TotalCopies(it)
		}
		return total
	case Par:
		total := v.CopiesPerPacket()
		for _, b := range v.Branches {
			total += TotalCopies(b)
		}
		return total
	}
	panic(fmt.Sprintf("graph: unknown node type %T", n))
}

// MaxDegree returns the widest parallel fan-out anywhere in the graph.
func MaxDegree(n Node) int {
	switch v := n.(type) {
	case NF, nil:
		return 1
	case Seq:
		max := 1
		for _, it := range v.Items {
			if d := MaxDegree(it); d > max {
				max = d
			}
		}
		return max
	case Par:
		max := len(v.Branches)
		for _, b := range v.Branches {
			if d := MaxDegree(b); d > max {
				max = d
			}
		}
		return max
	}
	panic(fmt.Sprintf("graph: unknown node type %T", n))
}

// Validate checks structural invariants: no duplicate NF instances, no
// empty Seq/Par, group partitions covering exactly the branch indices,
// and merge-op versions within the 4-bit metadata space.
func Validate(n Node) error {
	seen := map[NF]bool{}
	var check func(Node) error
	check = func(n Node) error {
		switch v := n.(type) {
		case NF:
			if seen[v] {
				return fmt.Errorf("graph: duplicate NF instance %s", v)
			}
			seen[v] = true
		case Seq:
			if len(v.Items) == 0 {
				return fmt.Errorf("graph: empty Seq")
			}
			for _, it := range v.Items {
				if err := check(it); err != nil {
					return err
				}
			}
		case Par:
			if len(v.Branches) < 2 {
				return fmt.Errorf("graph: Par with %d branches", len(v.Branches))
			}
			covered := map[int]bool{}
			for _, g := range v.NormGroups() {
				for _, idx := range g {
					if idx < 0 || idx >= len(v.Branches) {
						return fmt.Errorf("graph: group index %d out of range", idx)
					}
					if covered[idx] {
						return fmt.Errorf("graph: branch %d in multiple copy groups", idx)
					}
					covered[idx] = true
				}
			}
			if len(covered) != len(v.Branches) {
				return fmt.Errorf("graph: copy groups cover %d of %d branches",
					len(covered), len(v.Branches))
			}
			if len(v.FullCopy) > 0 && len(v.FullCopy) != len(v.NormGroups()) {
				return fmt.Errorf("graph: FullCopy has %d entries for %d groups",
					len(v.FullCopy), len(v.NormGroups()))
			}
			for _, op := range v.Ops {
				if (op.Kind == OpModify || op.Kind == OpAdd) &&
					(op.SrcVersion < 1 || int(op.SrcVersion) > len(v.NormGroups())) {
					return fmt.Errorf("graph: merge op %s references version %d of %d groups",
						op, op.SrcVersion, len(v.NormGroups()))
				}
			}
			for _, b := range v.Branches {
				if err := check(b); err != nil {
					return err
				}
			}
		case nil:
			return fmt.Errorf("graph: nil node")
		default:
			return fmt.Errorf("graph: unknown node type %T", n)
		}
		return nil
	}
	return check(n)
}

// DOT renders the graph in Graphviz dot syntax for inspection.
func DOT(n Node, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box];\n", name)
	id := 0
	fresh := func(label, shape string) string {
		id++
		nm := fmt.Sprintf("n%d", id)
		fmt.Fprintf(&b, "  %s [label=%q, shape=%s];\n", nm, label, shape)
		return nm
	}
	// emit returns the entry and exit node names of the sub-graph.
	var emit func(Node) (string, string)
	emit = func(n Node) (string, string) {
		switch v := n.(type) {
		case NF:
			nm := fresh(v.String(), "box")
			return nm, nm
		case Seq:
			var entry, prev string
			for i, it := range v.Items {
				in, out := emit(it)
				if i == 0 {
					entry = in
				} else {
					fmt.Fprintf(&b, "  %s -> %s;\n", prev, in)
				}
				prev = out
			}
			return entry, prev
		case Par:
			fork := fresh("fork", "point")
			join := fresh(joinLabel(v), "diamond")
			for _, br := range v.Branches {
				in, out := emit(br)
				fmt.Fprintf(&b, "  %s -> %s;\n  %s -> %s;\n", fork, in, out, join)
			}
			return fork, join
		}
		panic(fmt.Sprintf("graph: unknown node type %T", n))
	}
	if n != nil {
		emit(n)
	}
	b.WriteString("}\n")
	return b.String()
}

func joinLabel(p Par) string {
	if len(p.Ops) == 0 {
		return "merge"
	}
	ops := make([]string, len(p.Ops))
	for i, op := range p.Ops {
		ops[i] = op.String()
	}
	sort.Strings(ops)
	return "merge\\n" + strings.Join(ops, "\\n")
}
