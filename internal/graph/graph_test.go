package graph

import (
	"math/rand"
	"strings"
	"testing"

	"nfp/internal/packet"
)

func nf(name string, inst int) NF { return NF{Name: name, Instance: inst} }

// fig1b is the paper's Figure 1(b): VPN -> (Monitor || FW) -> LB.
func fig1b() Node {
	return Seq{Items: []Node{
		nf("vpn", 0),
		Par{Branches: []Node{nf("monitor", 0), nf("firewall", 0)}},
		nf("lb", 0),
	}}
}

// fig14 returns the six 4-NF structures of Figure 14.
func fig14() []Node {
	mk := func(i int) NF { return nf("firewall", i) }
	return []Node{
		// (1) sequential
		Seq{Items: []Node{mk(0), mk(1), mk(2), mk(3)}},
		// (2) 1+1+1+1
		Par{Branches: []Node{mk(0), mk(1), mk(2), mk(3)}},
		// (3) 1 -> 3
		Seq{Items: []Node{mk(0), Par{Branches: []Node{mk(1), mk(2), mk(3)}}}},
		// (4) 1+2+1
		Seq{Items: []Node{mk(0), Par{Branches: []Node{mk(1), mk(2)}}, mk(3)}},
		// (5) 1+3
		Par{Branches: []Node{mk(0), Seq{Items: []Node{mk(1), mk(2), mk(3)}}}},
		// (6) 2+2
		Seq{Items: []Node{
			Par{Branches: []Node{mk(0), mk(1)}},
			Par{Branches: []Node{mk(2), mk(3)}},
		}},
	}
}

func TestEquivalentLength(t *testing.T) {
	// §6.2.4: graph(2) has equivalent length 1; graph(5) has length 3.
	wants := []int{4, 1, 2, 3, 3, 2}
	for i, g := range fig14() {
		if got := EquivalentLength(g); got != wants[i] {
			t.Errorf("fig14 graph %d: length = %d, want %d", i+1, got, wants[i])
		}
	}
	if got := EquivalentLength(fig1b()); got != 3 {
		t.Errorf("fig1b length = %d, want 3 (25%% shorter than 4)", got)
	}
}

func TestNFCountAndWalkOrder(t *testing.T) {
	g := fig1b()
	if got := NFCount(g); got != 4 {
		t.Errorf("NFCount = %d", got)
	}
	var names []string
	Walk(g, func(n NF) { names = append(names, n.Name) })
	want := []string{"vpn", "monitor", "firewall", "lb"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("walk order = %v, want %v", names, want)
		}
	}
}

func TestMaxDegree(t *testing.T) {
	wants := []int{1, 4, 3, 2, 2, 2}
	for i, g := range fig14() {
		if got := MaxDegree(g); got != wants[i] {
			t.Errorf("fig14 graph %d: degree = %d, want %d", i+1, got, wants[i])
		}
	}
}

func TestCopyGroupsAndCopies(t *testing.T) {
	p := Par{
		Branches: []Node{nf("monitor", 0), nf("lb", 0)},
		Groups:   [][]int{{0}, {1}},
	}
	if p.CopiesPerPacket() != 1 {
		t.Errorf("copies = %d, want 1", p.CopiesPerPacket())
	}
	shared := Par{Branches: []Node{nf("monitor", 0), nf("firewall", 0)}}
	if shared.CopiesPerPacket() != 0 {
		t.Errorf("no-copy par copies = %d", shared.CopiesPerPacket())
	}
	g := Seq{Items: []Node{p, shared}}
	if TotalCopies(g) != 1 {
		t.Errorf("total copies = %d", TotalCopies(g))
	}
	groups := shared.NormGroups()
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Errorf("NormGroups = %v", groups)
	}
}

func TestValidateAcceptsPaperGraphs(t *testing.T) {
	for i, g := range fig14() {
		if err := Validate(g); err != nil {
			t.Errorf("fig14 graph %d invalid: %v", i+1, err)
		}
	}
	if err := Validate(fig1b()); err != nil {
		t.Errorf("fig1b invalid: %v", err)
	}
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    Node
		want string
	}{
		{"duplicate instance", Seq{Items: []Node{nf("fw", 0), nf("fw", 0)}}, "duplicate"},
		{"empty seq", Seq{}, "empty Seq"},
		{"single-branch par", Par{Branches: []Node{nf("fw", 0)}}, "1 branches"},
		{"nil node", nil, "nil node"},
		{
			"group out of range",
			Par{Branches: []Node{nf("a", 0), nf("b", 0)}, Groups: [][]int{{0, 5}}},
			"out of range",
		},
		{
			"branch in two groups",
			Par{Branches: []Node{nf("a", 0), nf("b", 0)}, Groups: [][]int{{0, 1}, {1}}},
			"multiple copy groups",
		},
		{
			"uncovered branch",
			Par{Branches: []Node{nf("a", 0), nf("b", 0)}, Groups: [][]int{{0}}},
			"cover",
		},
		{
			"bad fullcopy length",
			Par{
				Branches: []Node{nf("a", 0), nf("b", 0)},
				Groups:   [][]int{{0}, {1}},
				FullCopy: []bool{true},
			},
			"FullCopy",
		},
		{
			"merge op bad version",
			Par{
				Branches: []Node{nf("a", 0), nf("b", 0)},
				Groups:   [][]int{{0}, {1}},
				Ops: []MergeOp{{
					Kind: OpModify, SrcVersion: 7,
					SrcField: packet.FieldSrcIP, DstField: packet.FieldSrcIP,
				}},
			},
			"version",
		},
	}
	for _, c := range cases {
		err := Validate(c.g)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestMergeOpStrings(t *testing.T) {
	// Figure 6's example operations must render in the paper's syntax.
	cases := map[string]MergeOp{
		"modify(v1.sip, v2.sip)": {
			Kind: OpModify, SrcVersion: 2,
			SrcField: packet.FieldSrcIP, DstField: packet.FieldSrcIP,
		},
		"add(v2.ah, after, v1.ip)": {
			Kind: OpAdd, SrcVersion: 2,
			SrcField: packet.FieldAH, DstField: packet.FieldIPHeader, After: true,
		},
		"remove(v1.ah)": {Kind: OpRemove, DstField: packet.FieldAH},
	}
	for want, op := range cases {
		if got := op.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestGraphString(t *testing.T) {
	s := fig1b().String()
	if !strings.Contains(s, "vpn") || !strings.Contains(s, "||") || !strings.Contains(s, "->") {
		t.Errorf("String() = %q", s)
	}
	if got := nf("fw", 2).String(); got != "fw#2" {
		t.Errorf("instance String = %q", got)
	}
}

func TestDOTExport(t *testing.T) {
	dot := DOT(fig1b(), "fig1b")
	for _, frag := range []string{"digraph", "vpn", "monitor", "firewall", "lb", "merge", "->"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, dot)
		}
	}
	withOps := Par{
		Branches: []Node{nf("a", 0), nf("b", 0)},
		Groups:   [][]int{{0}, {1}},
		Ops: []MergeOp{{
			Kind: OpModify, SrcVersion: 2,
			SrcField: packet.FieldSrcIP, DstField: packet.FieldSrcIP,
		}},
	}
	if !strings.Contains(DOT(withOps, "ops"), "modify") {
		t.Error("DOT join label missing merge ops")
	}
}

func TestGraphMetricsProperty(t *testing.T) {
	// For random well-formed graphs: 1 ≤ EquivalentLength ≤ NFCount,
	// MaxDegree ≤ NFCount, and Validate accepts them.
	rng := rand.New(rand.NewSource(17))
	var build func(depth int, next *int) Node
	build = func(depth int, next *int) Node {
		mk := func() Node {
			n := NF{Name: "x", Instance: *next}
			*next++
			return n
		}
		if depth <= 0 || rng.Intn(3) == 0 {
			return mk()
		}
		k := 2 + rng.Intn(3)
		children := make([]Node, k)
		for i := range children {
			children[i] = build(depth-1, next)
		}
		if rng.Intn(2) == 0 {
			return Seq{Items: children}
		}
		return Par{Branches: children}
	}
	for trial := 0; trial < 300; trial++ {
		next := 0
		g := build(3, &next)
		if err := Validate(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		n := NFCount(g)
		l := EquivalentLength(g)
		if l < 1 || l > n {
			t.Fatalf("trial %d: length %d outside [1,%d] for %v", trial, l, n, g)
		}
		if d := MaxDegree(g); d < 1 || d > n {
			t.Fatalf("trial %d: degree %d outside [1,%d]", trial, d, n)
		}
		if TotalCopies(g) != 0 {
			t.Fatalf("trial %d: copies without groups", trial)
		}
		if len(NFs(g)) != n {
			t.Fatalf("trial %d: NFs() inconsistent", trial)
		}
	}
}
