#!/usr/bin/env sh
# CI entry point: build, vet, and race-test the whole module.
# Mirrors .github/workflows/ci.yml so the gate is reproducible locally.
#
#   ./ci.sh        — the blocking gate (build + vet + race tests, plus
#                    staticcheck when it is on PATH)
#   ./ci.sh bench  — the non-blocking burst-regression job: runs the
#                    Burst1/Burst32 benchmark pairs with -benchmem and
#                    writes BENCH_burst.json for artifact upload.
#   ./ci.sh bench-compare — the non-blocking fusion-ablation job: runs
#                    the Burst1/Burst32 pairs plus their _NoFusion
#                    variants, writes BENCH_fusion.json, and prints a
#                    per-benchmark delta table against the previous
#                    BENCH_burst.json when one exists (fail-soft: a
#                    missing or malformed baseline only warns).
#   ./ci.sh bench-shard — the non-blocking shard-scaling job: runs the
#                    Fig7 fused Burst32 benchmark at 1/4/8 shards,
#                    writes BENCH_shard.json, and prints a 1->4->8
#                    scaling table with the achieved speedup next to
#                    the ideal (min(shards, cores)). Fail-soft: the
#                    table reports, it never gates — on a single-core
#                    runner the axis measures sharding overhead, not
#                    scaling, and the table says so.
#   ./ci.sh bench-flowcache — the non-blocking flow-fast-path job: runs
#                    the Classifier_Rules{16,256,4096} benchmarks with
#                    and without the microflow cache plus the cache-off
#                    variants of the tracked Fig7/Fig13 Burst32 rows,
#                    writes BENCH_flowcache.json, prints the
#                    Rules4096/Rules16 hit-path flatness ratio
#                    (expected ~1x cache-on: hits are O(1) regardless
#                    of table size) and a delta table for the Fig7 row
#                    against BENCH_fusion.json. Fail-soft: it reports,
#                    it never gates.
#   ./ci.sh incident — the flight-recorder smoke: boots nfpd with an
#                    injected NF panic and an incident spool, asserts
#                    /debug/flightrecorder reports a balanced drop
#                    ledger (sum over causes == total drops), a
#                    cause=panic count, and a parseable incident
#                    bundle; exercises nfpinspect incident against the
#                    live server and the spool; then reports the
#                    recorder's tax on the tracked Burst32 benchmark
#                    into a fail-soft BENCH_flightrec.json. Set
#                    SPOOL_DIR to keep the spool (CI uploads it as an
#                    artifact on failure).
#   ./ci.sh fuzz   — the non-blocking fuzz smoke: each native fuzz
#                    target gets a short -fuzztime budget (override with
#                    FUZZ_TIME) on top of its checked-in seed corpus.
#   ./ci.sh trace  — the non-blocking span-tooling smoke: builds
#                    nfpinspect and runs the trace and criticalpath
#                    subcommands against an in-process chain, including
#                    a Chrome trace export (schema is gated by the
#                    golden test in the blocking job).
#   ./ci.sh diagnose — the diagnosis smoke: boots nfpd with live
#                    traffic and the diagnosis layer on, curls
#                    /debug/health and /debug/topflows, asserts the
#                    JSON is well-formed and health left "unknown",
#                    exercises nfpinspect health/top/metrics against
#                    the live server, then reports the _Diagnose
#                    benchmark's observability tax (non-gating).
#   ./ci.sh reload — the zero-downtime reconfiguration smoke: boots
#                    nfpd -reload under live traffic, SIGHUPs it twice
#                    mid-run, polls /debug/config until each new config
#                    generation goes live, then asserts conservation
#                    (injected == outputs + drops, zero pool buffers
#                    held) and a complete generation history. Also
#                    exercises nfpinspect config and writes a fail-soft
#                    BENCH_reload.json with the e2e p99 measured across
#                    the swaps.
set -eux

if [ "${1:-}" = "trace" ]; then
    bin="$(mktemp -d)"
    trap 'rm -rf "$bin"' EXIT
    go build -o "$bin/nfpinspect" ./cmd/nfpinspect
    "$bin/nfpinspect" trace -chain ids,monitor,lb -packets 500 -max 3
    "$bin/nfpinspect" trace -chain ids,monitor,lb -packets 500 -chrome "$bin/trace.json" -max 0 >/dev/null
    test -s "$bin/trace.json"
    "$bin/nfpinspect" criticalpath -chain ids,monitor,lb -packets 500
    exit 0
fi

if [ "${1:-}" = "diagnose" ]; then
    bin="$(mktemp -d)"
    log="$bin/nfpd.log"
    pid=""
    trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null; rm -rf "$bin"' EXIT
    go build -o "$bin/nfpd" ./cmd/nfpd
    go build -o "$bin/nfpinspect" ./cmd/nfpinspect
    # A Zipf-skewed run large enough to span several sampling windows;
    # -telemetry-addr keeps the server up after the traffic drains.
    "$bin/nfpd" -chain ids,monitor,lb -packets 200000 -seed 42 -zipf 1.4 \
        -telemetry-addr 127.0.0.1:0 -diagnose-interval 50ms -slo-p99 50ms \
        >"$log" 2>&1 &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's|^telemetry: *http://\([^/]*\)/metrics.*|\1|p' "$log")"
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || { cat "$log"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { cat "$log"; exit 1; }
    sleep 1 # let the sampler close a few windows over the live run
    curl -fsS "http://$addr/debug/health" > "$bin/health.json"
    curl -fsS "http://$addr/debug/topflows" > "$bin/topflows.json"
    python3 - "$bin/health.json" "$bin/topflows.json" <<'EOF'
import json, sys
health = json.load(open(sys.argv[1]))
top = json.load(open(sys.argv[2]))
assert health["state"] in ("ok", "degraded", "overloaded"), health
assert health["samples"] >= 2, health
assert health.get("bottlenecks"), "no NFs ranked"
assert top["k"] > 0 and top["total_pkts"] > 0, top
assert top["flows"], "no flows tracked"
print("health:", health["state"],
      "| top flow share: %.1f%%" % (100 * top["flows"][0]["pkts"] / top["total_pkts"]))
EOF
    "$bin/nfpinspect" health -addr "$addr"
    "$bin/nfpinspect" top -addr "$addr" -n 5
    "$bin/nfpinspect" metrics -addr "$addr" >/dev/null
    kill "$pid" && wait "$pid" || { cat "$log"; exit 1; }
    pid=""
    # Non-gating: the diagnosis layer's tax on the tracked Burst32
    # benchmark (sketch + e2e sampling + background sampler).
    go test -run '^$' -bench 'Fig7_NFP_SeqChain5_Burst32(_Diagnose)?$' \
        -benchtime "${BENCH_TIME:-1s}" . | awk '
        $1 ~ /^BenchmarkFig7_NFP_SeqChain5_Burst32(-[0-9]+)?$/ { base = $3 }
        $1 ~ /^BenchmarkFig7_NFP_SeqChain5_Burst32_Diagnose(-[0-9]+)?$/ { diag = $3 }
        END {
            if (base > 0 && diag > 0)
                printf "diagnosis tax: %.1f -> %.1f ns/op (%+.1f%%; non-gating)\n", \
                    base, diag, 100 * (diag - base) / base
        }
    '
    exit 0
fi

if [ "${1:-}" = "reload" ]; then
    bin="$(mktemp -d)"
    log="$bin/nfpd.log"
    pid=""
    trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null; rm -rf "$bin"' EXIT
    go build -o "$bin/nfpd" ./cmd/nfpd
    go build -o "$bin/nfpinspect" ./cmd/nfpinspect
    # A run long enough that both SIGHUPs land while traffic is still
    # flowing (the vpn chain is deliberately slow); -telemetry-addr
    # keeps the server queryable after the traffic drains.
    "$bin/nfpd" -chain vpn,monitor,firewall,lb -packets 2000000 -seed 7 \
        -shards 2 -reload -telemetry-addr 127.0.0.1:0 >"$log" 2>&1 &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's|^telemetry: *http://\([^/]*\)/metrics.*|\1|p' "$log")"
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || { cat "$log"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { cat "$log"; exit 1; }
    # hup_to_gen: SIGHUP the daemon, then poll /debug/config until the
    # wanted generation is live — the swap is asynchronous to the
    # signal, the endpoint is the ground truth.
    hup_to_gen() {
        kill -HUP "$pid"
        for _ in $(seq 1 150); do
            gen="$(curl -fsS "http://$addr/debug/config" | python3 -c 'import json,sys; print(json.load(sys.stdin)["generation"])' 2>/dev/null || echo 0)"
            [ "$gen" = "$1" ] && return 0
            kill -0 "$pid" 2>/dev/null || { cat "$log"; return 1; }
            sleep 0.1
        done
        echo "generation never reached $1 (got $gen)"; cat "$log"; return 1
    }
    hup_to_gen 2
    hup_to_gen 3
    # Wait for the traffic run to finish (nfpd prints its summary, then
    # keeps serving), so the conservation check sees the final counts.
    for _ in $(seq 1 600); do
        grep -q 'config gen:' "$log" && break
        kill -0 "$pid" 2>/dev/null || { cat "$log"; exit 1; }
        sleep 0.5
    done
    curl -fsS "http://$addr/debug/config" > "$bin/config.json"
    python3 - "$bin/config.json" <<'EOF'
import json, sys
ci = json.load(open(sys.argv[1]))
assert ci["generation"] == 3, ci
assert ci["reloads"] == 2, ci
assert ci["injected"] == 2000000, ci
assert ci["injected"] == ci["outputs"] + ci["drops"], \
    "conservation violated across reloads: %r" % ci
assert ci["pool_in_use"] == 0, "buffers leaked across reloads: %r" % ci
hist = ci["history"]
assert [g["generation"] for g in hist] == [1, 2, 3], hist
assert all(g["swapped_ns"] > 0 for g in hist[1:]), hist
assert len({g["compile_hash"] for g in hist}) == 1, \
    "same policy must compile to the same hash: %r" % hist
print("reload smoke: gen %d, %d reloads, %d pkts conserved, drains %s" %
      (ci["generation"], ci["reloads"], ci["injected"],
       ["%.1fms" % (g["drain_ns"] / 1e6) for g in hist[1:]]))
EOF
    "$bin/nfpinspect" config -addr "$addr"
    "$bin/nfpinspect" config -addr "$addr" -json >/dev/null
    # Fail-soft artifact: the e2e p99 measured over a run that spanned
    # two live swaps (the reload latency-tax headline number).
    curl -fsS "http://$addr/debug/telemetry" > "$bin/telemetry.json" || true
    python3 - "$bin/telemetry.json" "$bin/config.json" > "${BENCH_OUT:-BENCH_reload.json}" <<'EOF' || echo "warning: BENCH_reload.json failed (non-gating)"
import json, sys
tel = json.load(open(sys.argv[1]))
ci = json.load(open(sys.argv[2]))
series = [h for h in tel.get("histograms", []) if h["name"] == "nfp_e2e_latency_ns"]
json.dump({
    "reloads": ci["reloads"],
    "injected": ci["injected"],
    "drain_ns": [g["drain_ns"] for g in ci["history"] if g.get("drain_ns")],
    "e2e_p99_ns_max": max((h["p99"] for h in series), default=0),
    "e2e_p99_ns_by_series": [
        {"labels": h.get("labels"), "p99_ns": h["p99"], "count": h["count"]}
        for h in series],
}, sys.stdout, indent=2)
print()
EOF
    echo "wrote ${BENCH_OUT:-BENCH_reload.json}"
    kill "$pid" && wait "$pid" || true
    pid=""
    exit 0
fi

if [ "${1:-}" = "incident" ]; then
    bin="$(mktemp -d)"
    log="$bin/nfpd.log"
    spool="${SPOOL_DIR:-$bin/spool}"
    pid=""
    trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null; rm -rf "$bin"' EXIT
    go build -o "$bin/nfpd" ./cmd/nfpd
    go build -o "$bin/nfpinspect" ./cmd/nfpinspect
    # Inject a deterministic NF panic mid-run: the monitor dies on its
    # 5000th packet, the supervisor restarts it, and the flight
    # recorder must spool an incident bundle for the panic while the
    # ledger stays balanced. -telemetry-addr keeps the server
    # queryable after the traffic drains.
    "$bin/nfpd" -chain ids,monitor,lb -packets 300000 -seed 42 \
        -panic-nf monitor@5000 -flight-spool "$spool" -flight-interval 1s \
        -drop-sample 8 -telemetry-addr 127.0.0.1:0 >"$log" 2>&1 &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's|^telemetry: *http://\([^/]*\)/metrics.*|\1|p' "$log")"
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || { cat "$log"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { cat "$log"; exit 1; }
    # Wait for the traffic run to finish (nfpd prints its summary, then
    # keeps serving) so every in-flight drop has resolved terminally —
    # the conservation audit wants the final counts.
    for _ in $(seq 1 600); do
        grep -q 'outputs/drops:' "$log" && break
        kill -0 "$pid" 2>/dev/null || { cat "$log"; exit 1; }
        sleep 0.5
    done
    curl -fsS "http://$addr/debug/flightrecorder" > "$bin/status.json"
    python3 - "$bin/status.json" <<'EOF'
import json, sys
st = json.load(open(sys.argv[1]))
assert st["ledger_ok"], "drop ledger broken: %s" % st.get("ledger_error")
led = st["ledger"]
assert led["by_cause"].get("panic", 0) > 0, "injected panic not attributed: %r" % led
assert led["by_cause"].get("unknown", 0) == 0, "anonymous drops: %r" % led
assert st["incidents"], "panic produced no incident bundle"
assert st["bundles_written"] >= 1, st
assert any(e["kind"] == "panic" for e in st["events"]), \
    "event ring lost the panic: %r" % [e["kind"] for e in st["events"]]
print("flight recorder: %d drops (%s), %d bundle(s) spooled" % (
    led["total_drops"],
    " ".join("%s=%d" % kv for kv in sorted(led["by_cause"].items()) if kv[1]),
    st["bundles_written"]))
EOF
    # The newest spooled bundle must parse and carry the panic reason.
    newest="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["incidents"][-1]["file"])' "$bin/status.json")"
    curl -fsS "http://$addr/debug/flightrecorder?incident=$newest" > "$bin/bundle.json"
    python3 - "$bin/bundle.json" <<'EOF'
import json, sys
b = json.load(open(sys.argv[1]))
assert b["schema"] == 1, b["schema"]
assert b["reason"].startswith("panic:"), b["reason"]
assert b["build"], "bundle missing build info"
assert b["events"], "bundle missing event tail"
print("bundle %s: reason %s, %d events, %d metric counters" % (
    sys.argv[1].split("/")[-1], b["reason"], len(b["events"]),
    len(b.get("metrics", {}).get("counters", []))))
EOF
    # Path traversal must be rejected, not served.
    code="$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/debug/flightrecorder?incident=..%2Fnfpd.log")"
    [ "$code" = "400" ] || { echo "traversal got HTTP $code, want 400"; exit 1; }
    "$bin/nfpinspect" incident -addr "$addr"
    "$bin/nfpinspect" incident -addr "$addr" -json >/dev/null
    "$bin/nfpinspect" incident -spool "$spool"
    kill "$pid" && wait "$pid" || true
    pid=""
    # Fail-soft artifact: the flight recorder's tax on the tracked
    # Burst32 benchmark (provenance counters + ring vs ablation).
    raw="$bin/bench.txt"
    go test -run '^$' -bench 'Fig7_NFP_SeqChain5_Burst32(_NoFlightRec)?$' \
        -benchtime "${BENCH_TIME:-1s}" . | tee "$raw" || true
    awk '
        $1 ~ /^BenchmarkFig7_NFP_SeqChain5_Burst32(-[0-9]+)?$/ { on = $3 }
        $1 ~ /^BenchmarkFig7_NFP_SeqChain5_Burst32_NoFlightRec(-[0-9]+)?$/ { off = $3 }
        END {
            if (on > 0 && off > 0) {
                printf "{\n \"recorder_on_ns_per_op\": %s,\n \"recorder_off_ns_per_op\": %s,\n \"overhead_pct\": %.2f\n}\n", \
                    on, off, 100 * (on - off) / off
                printf "flight recorder tax: %.1f -> %.1f ns/op (%+.1f%%; non-gating)\n", \
                    off, on, 100 * (on - off) / off > "/dev/stderr"
            }
        }
    ' "$raw" > "${BENCH_OUT:-BENCH_flightrec.json}" || echo "warning: BENCH_flightrec.json failed (non-gating)"
    echo "wrote ${BENCH_OUT:-BENCH_flightrec.json}"
    exit 0
fi

if [ "${1:-}" = "fuzz" ]; then
    ft="${FUZZ_TIME:-10s}"
    # One -fuzz invocation per target: go test refuses to fuzz more
    # than one target (or package) at a time.
    go test -run '^$' -fuzz '^FuzzPolicyCompile$' -fuzztime "$ft" ./internal/core/
    go test -run '^$' -fuzz '^FuzzClassify$' -fuzztime "$ft" ./internal/dataplane/
    exit 0
fi

if [ "${1:-}" = "bench" ]; then
    out="${BENCH_OUT:-BENCH_burst.json}"
    raw="$(mktemp)"
    trap 'rm -f "$raw"' EXIT
    go test -run '^$' -bench 'Burst(1|32)$' -benchmem -benchtime="${BENCH_TIME:-1s}" . | tee "$raw"
    awk '
        BEGIN { print "[" }
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            ns = $3; bytes = $5; allocs = $7
            pps = (ns > 0) ? 1e9 / ns : 0
            if (n++) printf ",\n"
            printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"pkts_per_sec\": %.0f, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
                name, ns, pps, bytes, allocs
        }
        END { printf "\n]\n" }
    ' "$raw" > "$out"
    echo "wrote $out"
    exit 0
fi

if [ "${1:-}" = "bench-shard" ]; then
    out="${BENCH_OUT:-BENCH_shard.json}"
    raw="$(mktemp)"
    trap 'rm -f "$raw"' EXIT
    go test -run '^$' -bench 'Fig7_NFP_SeqChain5_Burst32_Shard(1|4|8)$' \
        -benchmem -benchtime="${BENCH_TIME:-1s}" . | tee "$raw"
    cores="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
    [ -n "$cores" ] || cores=1
    awk -v cores="$cores" '
        BEGIN { print "[" }
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            ns = $3; bytes = $5; allocs = $7
            pps = (ns > 0) ? 1e9 / ns : 0
            shards = name; sub(/^.*_Shard/, "", shards)
            if (n++) printf ",\n"
            printf "  {\"name\": \"%s\", \"shards\": %s, \"cores\": %s, \"ns_per_op\": %s, \"pkts_per_sec\": %.0f, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
                name, shards, cores, ns, pps, bytes, allocs
        }
        END { printf "\n]\n" }
    ' "$raw" > "$out"
    echo "wrote $out"
    # Scaling table vs the Shard1 row of the same run. Fail-soft by
    # design: this job reports, it never gates — the >= 3x expectation
    # for Shard4 only applies on a >= 4-core runner.
    awk -v cores="$cores" '
        /^Benchmark.*_Shard[0-9]+(-[0-9]+)?[ \t]/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            shards = name; sub(/^.*_Shard/, "", shards)
            ns[shards] = $3 + 0
            order[cnt++] = shards
        }
        END {
            if (!(1 in ns) || ns[1] <= 0) { print "warning: no Shard1 baseline in run"; exit }
            printf "shard scaling (%d core(s) visible to the runtime):\n", cores
            for (i = 0; i < cnt; i++) {
                k = order[i]
                ideal = (k + 0 < cores + 0) ? k : cores
                printf "  Shard%-3s %10.1f ns/op  %12.0f pps  speedup %5.2fx (ideal %dx)\n", \
                    k, ns[k], 1e9 / ns[k], ns[1] / ns[k], ideal
            }
            if (cores + 0 < 4)
                print "  note: fewer than 4 cores — this run measures sharding overhead, not scaling"
        }
    ' "$raw" || echo "warning: scaling table failed"
    exit 0
fi

if [ "${1:-}" = "bench-flowcache" ]; then
    out="${BENCH_OUT:-BENCH_flowcache.json}"
    base="${BENCH_BASELINE:-BENCH_fusion.json}"
    raw="$(mktemp)"
    trap 'rm -f "$raw"' EXIT
    go test -run '^$' \
        -bench 'Classifier_Rules(16|256|4096)(_NoFlowCache)?$|Fig7_NFP_SeqChain5_Burst32(_NoFlowCache)?$|Fig13_NorthSouth_Burst32(_NoFlowCache)?$' \
        -benchmem -benchtime="${BENCH_TIME:-1s}" . | tee "$raw"
    awk '
        BEGIN { print "[" }
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            ns = $3; bytes = $5; allocs = $7
            pps = (ns > 0) ? 1e9 / ns : 0
            if (n++) printf ",\n"
            printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"pkts_per_sec\": %.0f, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
                name, ns, pps, bytes, allocs
        }
        END { printf "\n]\n" }
    ' "$raw" > "$out"
    echo "wrote $out"
    # Hit-path flatness: cache-on ns/op must not grow with the rule
    # table (every steady-state packet is an exact-match hit), while
    # the _NoFlowCache rows show the linear walk the cache bypasses.
    # Fail-soft by design: this job reports, it never gates.
    awk '
        /^BenchmarkClassifier_Rules[0-9]+(-[0-9]+)?[ \t]/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            rules = name; sub(/^.*_Rules/, "", rules)
            on[rules] = $3 + 0
        }
        /^BenchmarkClassifier_Rules[0-9]+_NoFlowCache(-[0-9]+)?[ \t]/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            rules = name; sub(/^.*_Rules/, "", rules); sub(/_NoFlowCache$/, "", rules)
            off[rules] = $3 + 0
        }
        END {
            print "flow-cache hit-path flatness (ns/op per packet):"
            n = split("16 256 4096", sizes, " ")
            for (i = 1; i <= n; i++) {
                r = sizes[i]
                if (!(r in on)) continue
                spd = (r in off && on[r] > 0) ? off[r] / on[r] : 0
                printf "  Rules%-5s cache-on %8.1f  cache-off %10.1f  speedup %7.2fx\n", r, on[r], off[r], spd
            }
            if (on[16] > 0 && on[4096] > 0) {
                ratio = on[4096] / on[16]
                printf "  Rules4096/Rules16 cache-on ratio: %.2fx (flat hit path wants ~1x, criterion <= 1.25x)\n", ratio
            } else {
                print "  warning: missing Rules16/Rules4096 cache-on rows"
            }
        }
    ' "$raw" || echo "warning: flatness table failed"
    # Tracked-row tax: the cache must be invisible on the default-route
    # Fig7/Fig13 paths (empty rule table bypasses it entirely).
    if [ -f "$base" ]; then
        awk -v base="$base" '
            NR == FNR {
                if (match($0, /"name": "[^"]+"/)) {
                    name = substr($0, RSTART + 9, RLENGTH - 10)
                    if (match($0, /"ns_per_op": [0-9.]+/))
                        prev[name] = substr($0, RSTART + 13, RLENGTH - 13)
                }
                next
            }
            /^BenchmarkFig/ {
                name = $1; sub(/-[0-9]+$/, "", name)
                key = name; sub(/_NoFlowCache$/, "", key)
                ns = $3 + 0
                if (key in prev && prev[key] > 0) {
                    delta = 100 * (ns - prev[key]) / prev[key]
                    printf "%-52s %10.1f ns/op  baseline %10.1f  delta %+7.1f%%\n", name, ns, prev[key], delta
                } else {
                    printf "%-52s %10.1f ns/op  (no baseline)\n", name, ns
                }
            }
        ' "$base" "$raw" || echo "warning: delta table failed (malformed $base?)"
    else
        echo "warning: no baseline $base — skipping delta table"
    fi
    exit 0
fi

if [ "${1:-}" = "bench-compare" ]; then
    out="${BENCH_OUT:-BENCH_fusion.json}"
    base="${BENCH_BASELINE:-BENCH_burst.json}"
    raw="$(mktemp)"
    trap 'rm -f "$raw"' EXIT
    go test -run '^$' -bench 'Burst(1|32)(_NoFusion)?$' -benchmem -benchtime="${BENCH_TIME:-1s}" . | tee "$raw"
    awk '
        BEGIN { print "[" }
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            ns = $3; bytes = $5; allocs = $7
            pps = (ns > 0) ? 1e9 / ns : 0
            if (n++) printf ",\n"
            printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"pkts_per_sec\": %.0f, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
                name, ns, pps, bytes, allocs
        }
        END { printf "\n]\n" }
    ' "$raw" > "$out"
    echo "wrote $out"
    # Delta table vs the previous burst-suite JSON. _NoFusion rows
    # compare against the unsuffixed baseline name, so the fusion-off
    # engine is expected near 0% and the fused rows show the win.
    # Fail-soft by design: this job reports, it never gates.
    if [ -f "$base" ]; then
        awk -v base="$base" '
            NR == FNR {
                if (match($0, /"name": "[^"]+"/)) {
                    name = substr($0, RSTART + 9, RLENGTH - 10)
                    if (match($0, /"ns_per_op": [0-9.]+/))
                        prev[name] = substr($0, RSTART + 13, RLENGTH - 13)
                }
                next
            }
            /^Benchmark/ {
                name = $1; sub(/-[0-9]+$/, "", name)
                key = name; sub(/_NoFusion$/, "", key)
                ns = $3 + 0
                if (key in prev && prev[key] > 0) {
                    delta = 100 * (ns - prev[key]) / prev[key]
                    printf "%-48s %10.1f ns/op  baseline %10.1f  delta %+7.1f%%\n", name, ns, prev[key], delta
                } else {
                    printf "%-48s %10.1f ns/op  (no baseline)\n", name, ns
                }
            }
        ' "$base" "$raw" || echo "warning: delta table failed (malformed $base?)"
    else
        echo "warning: no baseline $base — skipping delta table"
    fi
    exit 0
fi

go build ./...
go vet ./...
# staticcheck is optional locally (no forced install); CI installs it.
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
fi
go test -race ./...
